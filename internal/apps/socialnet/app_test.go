package socialnet

import (
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/core"
	"bass/internal/mesh"
	"bass/internal/scheduler"
	"bass/internal/trace"
	"bass/internal/workload"
)

func lanNodes() []cluster.Node {
	return []cluster.Node{
		{Name: "node1", CPU: 16, MemoryMB: 65536},
		{Name: "node2", CPU: 16, MemoryMB: 65536},
		{Name: "node3", CPU: 16, MemoryMB: 65536},
		// The workload generator runs outside the cluster, as the paper's
		// wrk2 does.
		{Name: "node4", CPU: 8, MemoryMB: 8192, Unschedulable: true},
	}
}

func TestGraphShape(t *testing.T) {
	app, err := New(Config{ClientNode: "node1"})
	if err != nil {
		t.Fatal(err)
	}
	g := app.Graph()
	if got := g.NumComponents(); got != 28 { // 27 services + load generator
		t.Fatalf("components = %d, want 28 (27 microservices + load-gen)", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lg, err := g.Component(ClientComponent)
	if err != nil {
		t.Fatal(err)
	}
	if lg.PinnedTo() != "node1" {
		t.Errorf("load-gen pinned to %q", lg.PinnedTo())
	}
	// The client→frontend edge must be the heaviest (timeline responses).
	front := g.Weight(ClientComponent, SvcNginx)
	for _, e := range g.Edges() {
		if e.From == ClientComponent {
			continue
		}
		if e.BandwidthMbps > front {
			t.Errorf("edge %s->%s (%v) heavier than client->nginx (%v)",
				e.From, e.To, e.BandwidthMbps, front)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error without ClientNode")
	}
}

func TestRequestMixFractionsSumToOne(t *testing.T) {
	var sum float64
	for _, rt := range requestTypes() {
		sum += rt.frac
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("request mix fractions sum to %v", sum)
	}
}

func TestServicesCount(t *testing.T) {
	if got := len(services()); got != 27 {
		t.Errorf("services = %d, want 27 (DeathStarBench social network)", got)
	}
	seen := map[string]bool{}
	for _, s := range services() {
		if seen[s.name] {
			t.Errorf("duplicate service %q", s.name)
		}
		seen[s.name] = true
		if s.cpu <= 0 || s.memMB <= 0 {
			t.Errorf("service %q has empty resources", s.name)
		}
	}
}

func TestHopsReferenceKnownServices(t *testing.T) {
	known := map[string]bool{ClientComponent: true}
	for _, s := range services() {
		known[s.name] = true
	}
	for _, rt := range requestTypes() {
		for _, h := range rt.hops {
			if !known[h.from] || !known[h.to] {
				t.Errorf("%s: hop %s->%s references unknown service", rt.name, h.from, h.to)
			}
		}
	}
}

// deploySocial builds a 3-node LAN simulation running the workload.
func deploySocial(t *testing.T, topo *mesh.Topology, cfg Config, simCfg core.Config) (*App, *core.Simulation) {
	t.Helper()
	sim, err := core.NewSimulation(topo, lanNodes(), 1, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Orch.Deploy(cfg.AppName, app); err != nil {
		t.Fatal(err)
	}
	return app, sim
}

func TestBaselineLatencySubSecond(t *testing.T) {
	topo := mesh.FullMesh([]string{"node1", "node2", "node3", "node4"}, 1000, time.Millisecond, time.Hour)
	cfg := Config{
		AppName:    "socialnet",
		ClientNode: "node4",
		Arrival:    workload.Constant{PerSecond: 50},
	}
	app, sim := deploySocial(t, topo, cfg, core.Config{
		Policy: scheduler.NewBass(scheduler.HeuristicLongestPath),
	})
	defer sim.Close()
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if app.Requests() < 5000 {
		t.Fatalf("requests = %d", app.Requests())
	}
	mean := app.Latency().Histogram().Mean()
	if mean <= 0 || mean > 1.0 {
		t.Errorf("mean latency = %.3fs, want sub-second on an unloaded LAN", mean)
	}
}

// TestFig5ThrottleInflatesLatency reproduces Fig 5: throttling the link that
// carries frontend traffic to 25 Mbps for two minutes inflates average
// latency by an order of magnitude; lifting the throttle recovers it.
func TestFig5ThrottleInflatesLatency(t *testing.T) {
	topo := mesh.FullMesh([]string{"node1", "node2", "node3", "node4"}, 1000, time.Millisecond, time.Hour)
	cfg := Config{
		AppName:    "socialnet",
		ClientNode: "node4",
		Arrival:    workload.Exponential{MeanPerSecond: 400},
	}
	app, sim := deploySocial(t, topo, cfg, core.Config{
		Policy: scheduler.NewBass(scheduler.HeuristicLongestPath),
	})
	defer sim.Close()

	// Find where the frontend landed and throttle the client→frontend link
	// between t=60s and t=180s.
	nginxNode := sim.Cluster.NodeOf("socialnet", SvcNginx)
	if nginxNode == "" || nginxNode == "node4" {
		t.Fatalf("nginx on %q", nginxNode)
	}
	if err := topo.SetCapacity("node4", nginxNode, trace.StepTrace("throttle", time.Second, time.Hour, []trace.Level{
		{From: 0, Mbps: 1000},
		{From: 60 * time.Second, Mbps: 25},
		{From: 180 * time.Second, Mbps: 1000},
	})); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	series := app.Latency().Series()
	calm, ok := series.At(50 * time.Second)
	if !ok {
		t.Fatal("no latency samples before the throttle")
	}
	hot, ok := series.At(170 * time.Second)
	if !ok {
		t.Fatal("no latency samples during the throttle")
	}
	recovered, ok := series.At(280 * time.Second)
	if !ok {
		t.Fatal("no latency samples after recovery")
	}
	if hot < calm*10 {
		t.Errorf("throttled latency %.3fs not an order of magnitude above calm %.3fs", hot, calm)
	}
	if recovered > calm*3 {
		t.Errorf("latency %.3fs did not recover towards calm %.3fs", recovered, calm)
	}
}

// TestFig14aRestartSpike reproduces Fig 14(a): force-restarting a component
// mid-run raises mean latency from ≈0.5s to several seconds while requests
// stall behind the restart.
func TestFig14aRestartSpike(t *testing.T) {
	topo := mesh.FullMesh([]string{"node1", "node2", "node3", "node4"}, 1000, time.Millisecond, time.Hour)
	cfg := Config{
		AppName:    "socialnet",
		ClientNode: "node4",
		Arrival:    workload.Constant{PerSecond: 50},
	}
	app, sim := deploySocial(t, topo, cfg, core.Config{
		Policy:            scheduler.NewBass(scheduler.HeuristicLongestPath),
		MigrationDowntime: 4300 * time.Millisecond,
	})
	defer sim.Close()
	if err := sim.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	target := "node1"
	if sim.Cluster.NodeOf("socialnet", SvcPostStorage) == "node1" {
		target = "node2"
	}
	if err := sim.Orch.ForceMigrate("socialnet", SvcPostStorage, target); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Minute + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	series := app.Latency().Series()
	calm, _ := series.At(55 * time.Second)
	spike, _ := series.At(61 * time.Second)
	if spike < 1.0 || spike < calm*4 {
		t.Errorf("restart spike = %.3fs (calm %.3fs), want multi-second stall", spike, calm)
	}
}

func TestLatencyByType(t *testing.T) {
	app, err := New(Config{ClientNode: "node1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.LatencyByType("read-home-timeline"); err != nil {
		t.Errorf("known type: %v", err)
	}
	if _, err := app.LatencyByType("ghost"); err == nil {
		t.Error("unknown type: want error")
	}
}
