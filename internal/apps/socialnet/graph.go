// Package socialnet models the DeathStarBench social-network application the
// BASS paper evaluates: 27 microservices (frontends, logic services, and
// their memcached/redis/mongodb stores) exchanging RPCs for three request
// types — read-home-timeline, read-user-timeline, and compose-post. Traffic
// between service pairs rides the simulated network as aggregate streams;
// per-request latency follows an M/M/1 channel model whose service rate is
// the bandwidth a message burst can attain on the routed path, so link
// throttling and trace-driven dips inflate tail latency exactly the way the
// paper's Figs 5, 11, 13, 14 and 16 show.
package socialnet

import "time"

// ClientComponent is the pinned workload-generator pseudo-component.
const ClientComponent = "load-gen"

// Service names (the 27 microservices of DeathStarBench's social network).
const (
	SvcNginx           = "nginx-web-server"
	SvcMediaFrontend   = "media-frontend"
	SvcComposePost     = "compose-post-service"
	SvcText            = "text-service"
	SvcUniqueID        = "unique-id-service"
	SvcURLShorten      = "url-shorten-service"
	SvcUserMention     = "user-mention-service"
	SvcUser            = "user-service"
	SvcMedia           = "media-service"
	SvcPostStorage     = "post-storage-service"
	SvcUserTimeline    = "user-timeline-service"
	SvcHomeTimeline    = "home-timeline-service"
	SvcSocialGraph     = "social-graph-service"
	SvcJaeger          = "jaeger"
	StoURLShortenMC    = "url-shorten-memcached"
	StoURLShortenMongo = "url-shorten-mongodb"
	StoUserMC          = "user-memcached"
	StoUserMongo       = "user-mongodb"
	StoMediaMC         = "media-memcached"
	StoMediaMongo      = "media-mongodb"
	StoPostStorageMC   = "post-storage-memcached"
	StoPostMongo       = "post-storage-mongodb"
	StoUserTLRedis     = "user-timeline-redis"
	StoUserTLMongo     = "user-timeline-mongodb"
	StoHomeTLRedis     = "home-timeline-redis"
	StoSocialRedis     = "social-graph-redis"
	StoSocialMongo     = "social-graph-mongodb"
)

// serviceSpec describes one microservice's resources and per-call compute
// time.
type serviceSpec struct {
	name    string
	cpu     float64
	memMB   float64
	svcTime time.Duration
}

// services returns the 27 microservices with resource requests sized like
// DeathStarBench's helm defaults (fractional cores, modest memory).
func services() []serviceSpec {
	ms := time.Millisecond
	return []serviceSpec{
		{SvcNginx, 1.0, 512, 1 * ms},
		{SvcMediaFrontend, 0.5, 256, 1 * ms},
		{SvcComposePost, 1.0, 512, 2 * ms},
		{SvcText, 0.5, 256, 1500 * time.Microsecond},
		{SvcUniqueID, 0.25, 128, 500 * time.Microsecond},
		{SvcURLShorten, 0.5, 256, 1 * ms},
		{SvcUserMention, 0.5, 256, 1 * ms},
		{SvcUser, 0.5, 512, 1500 * time.Microsecond},
		{SvcMedia, 0.5, 512, 2 * ms},
		{SvcPostStorage, 1.0, 1024, 2 * ms},
		{SvcUserTimeline, 0.75, 512, 2 * ms},
		{SvcHomeTimeline, 0.75, 512, 2 * ms},
		{SvcSocialGraph, 0.5, 512, 1500 * time.Microsecond},
		{SvcJaeger, 0.5, 512, 0},
		{StoURLShortenMC, 0.25, 512, 300 * time.Microsecond},
		{StoURLShortenMongo, 0.5, 1024, 2 * ms},
		{StoUserMC, 0.25, 512, 300 * time.Microsecond},
		{StoUserMongo, 0.5, 1024, 2 * ms},
		{StoMediaMC, 0.25, 512, 300 * time.Microsecond},
		{StoMediaMongo, 0.5, 1024, 2 * ms},
		{StoPostStorageMC, 0.25, 512, 300 * time.Microsecond},
		{StoPostMongo, 0.5, 1024, 2 * ms},
		{StoUserTLRedis, 0.25, 512, 300 * time.Microsecond},
		{StoUserTLMongo, 0.5, 1024, 2 * ms},
		{StoHomeTLRedis, 0.25, 512, 300 * time.Microsecond},
		{StoSocialRedis, 0.25, 512, 300 * time.Microsecond},
		{StoSocialMongo, 0.5, 1024, 2 * ms},
	}
}

// hop is one RPC in a request's call sequence: a request message from → to
// and a response back. Async hops (tracing spans) carry traffic but do not
// add to request latency.
type hop struct {
	from, to string
	reqKB    float64
	respKB   float64
	async    bool
}

// requestType is one of the workload mix's request classes.
type requestType struct {
	name string
	frac float64
	hops []hop
}

// requestTypes returns the paper-style mixed workload: 60% home-timeline
// reads, 30% user-timeline reads, 10% post composition (with media).
func requestTypes() []requestType {
	return []requestType{
		{
			name: "read-home-timeline",
			frac: 0.60,
			hops: []hop{
				{from: ClientComponent, to: SvcNginx, reqKB: 0.5, respKB: 20},
				{from: SvcNginx, to: SvcHomeTimeline, reqKB: 0.5, respKB: 18},
				{from: SvcHomeTimeline, to: StoHomeTLRedis, reqKB: 0.3, respKB: 1.5},
				{from: SvcHomeTimeline, to: SvcPostStorage, reqKB: 1.0, respKB: 16},
				{from: SvcPostStorage, to: StoPostStorageMC, reqKB: 1.0, respKB: 12},
				{from: SvcPostStorage, to: StoPostMongo, reqKB: 0.5, respKB: 6},
				{from: SvcNginx, to: SvcJaeger, reqKB: 1.0, respKB: 0, async: true},
			},
		},
		{
			name: "read-user-timeline",
			frac: 0.30,
			hops: []hop{
				{from: ClientComponent, to: SvcNginx, reqKB: 0.5, respKB: 20},
				{from: SvcNginx, to: SvcUserTimeline, reqKB: 0.5, respKB: 18},
				{from: SvcUserTimeline, to: StoUserTLRedis, reqKB: 0.3, respKB: 1.5},
				{from: SvcUserTimeline, to: StoUserTLMongo, reqKB: 0.5, respKB: 4},
				{from: SvcUserTimeline, to: SvcPostStorage, reqKB: 1.0, respKB: 16},
				{from: SvcPostStorage, to: StoPostStorageMC, reqKB: 1.0, respKB: 12},
				{from: SvcNginx, to: SvcJaeger, reqKB: 1.0, respKB: 0, async: true},
			},
		},
		{
			name: "compose-post",
			frac: 0.10,
			hops: []hop{
				{from: ClientComponent, to: SvcNginx, reqKB: 2, respKB: 1},
				{from: SvcNginx, to: SvcMediaFrontend, reqKB: 30, respKB: 0.5},
				{from: SvcMediaFrontend, to: SvcMedia, reqKB: 30, respKB: 0.5},
				{from: SvcMedia, to: StoMediaMongo, reqKB: 30, respKB: 0.5},
				{from: SvcMedia, to: StoMediaMC, reqKB: 5, respKB: 0.2},
				{from: SvcNginx, to: SvcComposePost, reqKB: 2, respKB: 0.5},
				{from: SvcComposePost, to: SvcUniqueID, reqKB: 0.2, respKB: 0.2},
				{from: SvcComposePost, to: SvcText, reqKB: 1.5, respKB: 1},
				{from: SvcText, to: SvcURLShorten, reqKB: 0.5, respKB: 0.5},
				{from: SvcURLShorten, to: StoURLShortenMC, reqKB: 0.3, respKB: 0.2},
				{from: SvcURLShorten, to: StoURLShortenMongo, reqKB: 0.4, respKB: 0.2},
				{from: SvcText, to: SvcUserMention, reqKB: 0.5, respKB: 0.5},
				{from: SvcUserMention, to: StoUserMC, reqKB: 0.3, respKB: 0.3},
				{from: SvcComposePost, to: SvcUser, reqKB: 0.5, respKB: 0.5},
				{from: SvcUser, to: StoUserMongo, reqKB: 0.5, respKB: 0.5},
				{from: SvcComposePost, to: SvcPostStorage, reqKB: 3, respKB: 0.3},
				{from: SvcPostStorage, to: StoPostMongo, reqKB: 3, respKB: 0.2},
				{from: SvcComposePost, to: SvcHomeTimeline, reqKB: 0.5, respKB: 0.2},
				{from: SvcHomeTimeline, to: SvcSocialGraph, reqKB: 0.3, respKB: 2},
				{from: SvcSocialGraph, to: StoSocialRedis, reqKB: 0.3, respKB: 1.5},
				{from: SvcSocialGraph, to: StoSocialMongo, reqKB: 0.3, respKB: 0.5},
				{from: SvcHomeTimeline, to: StoHomeTLRedis, reqKB: 1.5, respKB: 0.2},
				{from: SvcComposePost, to: SvcUserTimeline, reqKB: 0.5, respKB: 0.2},
				{from: SvcUserTimeline, to: StoUserTLRedis, reqKB: 1.5, respKB: 0.2},
				{from: SvcUserTimeline, to: StoUserTLMongo, reqKB: 1.5, respKB: 0.2},
				{from: SvcNginx, to: SvcJaeger, reqKB: 1.5, respKB: 0, async: true},
			},
		},
	}
}

// edgeKey identifies a directed caller→callee channel.
type edgeKey struct {
	from, to string
}

// edgeLoad is the profiled traffic on one channel at a reference rate.
// Requests flow caller→callee; responses flow callee→caller. The two
// directions are tracked separately because tc-style egress shaping (the
// paper's experiments) throttles them independently.
type edgeLoad struct {
	// msgsPerReq is the expected number of RPCs per workload request.
	msgsPerReq float64
	// reqKBPerReq / respKBPerReq are the expected KB per workload request in
	// each direction.
	reqKBPerReq  float64
	respKBPerReq float64
}

// kbPerReq is the total traffic per workload request, both directions.
func (l edgeLoad) kbPerReq() float64 { return l.reqKBPerReq + l.respKBPerReq }

// aggregateLoads folds the request mix into per-channel expectations.
func aggregateLoads() map[edgeKey]edgeLoad {
	out := make(map[edgeKey]edgeLoad)
	for _, rt := range requestTypes() {
		for _, h := range rt.hops {
			k := edgeKey{from: h.from, to: h.to}
			l := out[k]
			l.msgsPerReq += rt.frac
			l.reqKBPerReq += rt.frac * h.reqKB
			l.respKBPerReq += rt.frac * h.respKB
			out[k] = l
		}
	}
	return out
}
