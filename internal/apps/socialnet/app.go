package socialnet

import (
	"fmt"
	"time"

	"bass/internal/core"
	"bass/internal/dag"
	"bass/internal/simnet"
	"bass/internal/workload"
)

// Config describes the social-network deployment and workload.
type Config struct {
	// AppName names the deployment (defaults to "socialnet").
	AppName string
	// ClientNode pins the load generator to a mesh node.
	ClientNode string
	// Arrival is the request process (e.g. workload.Constant{PerSecond: 50}).
	Arrival workload.Arrival
	// PeakFactor scales observed traffic into the profiled bandwidth
	// requirement written on DAG edges (default 1.6): requirements leave
	// burst room above the average rate.
	PeakFactor float64
	// ProfileRPS is the request rate the offline profiling ran at; DAG edge
	// weights are computed for it. Defaults to the arrival rate.
	ProfileRPS float64
}

func (c Config) withDefaults() (Config, error) {
	if c.AppName == "" {
		c.AppName = "socialnet"
	}
	if c.ClientNode == "" {
		return c, fmt.Errorf("socialnet: ClientNode is required")
	}
	if c.Arrival == nil {
		c.Arrival = workload.Constant{PerSecond: 50}
	}
	if c.PeakFactor == 0 {
		c.PeakFactor = 1.6
	}
	if c.ProfileRPS == 0 {
		c.ProfileRPS = c.Arrival.Rate()
	}
	return c, nil
}

// channel is the runtime state of one caller→callee RPC channel. Requests
// and responses load opposite link directions, so each side is a separate
// aggregate stream.
type channel struct {
	key edgeKey
	// msgsPerSec derives from the request mix at the current arrival rate;
	// reqBitsPerMsg / respBitsPerMsg are mean per-RPC message sizes.
	msgsPerSec     float64
	reqBitsPerMsg  float64
	respBitsPerMsg float64

	reqStream  simnet.FlowID
	respStream simnet.FlowID
	hasReq     bool
	hasResp    bool
}

func (ch *channel) offeredReqMbps() float64 {
	return ch.msgsPerSec * ch.reqBitsPerMsg / 1e6
}

func (ch *channel) offeredRespMbps() float64 {
	return ch.msgsPerSec * ch.respBitsPerMsg / 1e6
}

// App is the deployable social-network workload.
type App struct {
	cfg   Config
	graph *dag.Graph

	env      *core.Env
	channels map[edgeKey]*channel
	svcTime  map[string]time.Duration
	types    []requestType

	downUntil map[string]time.Duration
	latency   *workload.LatencyRecorder
	byType    map[string]*workload.LatencyRecorder
	stopGen   func()
	requests  int
}

var _ core.Workload = (*App)(nil)

// New builds the social-network workload.
func New(cfg Config) (*App, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := &App{
		cfg:       cfg,
		channels:  make(map[edgeKey]*channel),
		svcTime:   make(map[string]time.Duration),
		types:     requestTypes(),
		downUntil: make(map[string]time.Duration),
		latency:   workload.NewLatencyRecorder(time.Second),
		byType:    make(map[string]*workload.LatencyRecorder),
	}
	for _, rt := range a.types {
		a.byType[rt.name] = workload.NewLatencyRecorder(time.Second)
	}

	g := dag.NewGraph(cfg.AppName)
	if err := g.AddComponent(dag.Component{
		Name:   ClientComponent,
		Labels: dag.Pin(cfg.ClientNode),
	}); err != nil {
		return nil, err
	}
	for _, s := range services() {
		a.svcTime[s.name] = s.svcTime
		if err := g.AddComponent(dag.Component{
			Name:     s.name,
			CPU:      s.cpu,
			MemoryMB: s.memMB,
		}); err != nil {
			return nil, err
		}
	}

	rate := cfg.Arrival.Rate()
	for key, load := range aggregateLoads() {
		ch := &channel{
			key:        key,
			msgsPerSec: load.msgsPerReq * rate,
		}
		if load.msgsPerReq > 0 {
			ch.reqBitsPerMsg = load.reqKBPerReq / load.msgsPerReq * 8e3
			ch.respBitsPerMsg = load.respKBPerReq / load.msgsPerReq * 8e3
		}
		a.channels[key] = ch
		// DAG edge weight: profiled requirement at ProfileRPS with burst
		// headroom, covering both directions (the pair's total traffic).
		perMsgBits := (load.reqKBPerReq + load.respKBPerReq) / load.msgsPerReq * 8e3
		reqMbps := cfg.PeakFactor * load.msgsPerReq * cfg.ProfileRPS * perMsgBits / 1e6
		if err := g.AddEdge(key.from, key.to, reqMbps); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	a.graph = g
	return a, nil
}

// Graph returns the component DAG (28 vertices: 27 services + the pinned
// load generator).
func (a *App) Graph() *dag.Graph { return a.graph }

// Start registers the channel streams and begins generating requests.
func (a *App) Start(env *core.Env) error {
	a.env = env
	for _, ch := range a.channels {
		if err := a.attachChannel(ch); err != nil {
			return err
		}
	}
	a.scheduleNext()
	return nil
}

// attachChannel (re)creates the channel's network streams for the current
// placement: one carrying requests caller→callee, one carrying responses
// callee→caller.
func (a *App) attachChannel(ch *channel) error {
	a.detachChannel(ch)
	from := a.env.NodeOf(ch.key.from)
	to := a.env.NodeOf(ch.key.to)
	if from == "" || to == "" || from == to {
		return nil // co-located channels put no load on the mesh
	}
	tag := a.env.Tag(ch.key.from, ch.key.to)
	if ch.offeredReqMbps() > 0 {
		id, err := a.env.Net().AddStream(tag, from, to, ch.offeredReqMbps())
		if err != nil {
			return fmt.Errorf("socialnet: channel %s->%s: %w", ch.key.from, ch.key.to, err)
		}
		ch.reqStream, ch.hasReq = id, true
	}
	if ch.offeredRespMbps() > 0 {
		id, err := a.env.Net().AddStream(tag, to, from, ch.offeredRespMbps())
		if err != nil {
			return fmt.Errorf("socialnet: channel %s->%s responses: %w", ch.key.from, ch.key.to, err)
		}
		ch.respStream, ch.hasResp = id, true
	}
	return nil
}

// detachChannel removes the channel's streams.
func (a *App) detachChannel(ch *channel) {
	if ch.hasReq {
		_ = a.env.Net().RemoveStream(ch.reqStream)
		ch.hasReq = false
	}
	if ch.hasResp {
		_ = a.env.Net().RemoveStream(ch.respStream)
		ch.hasResp = false
	}
}

// OnMigration reroutes the moved component's channels: its traffic drops
// during the restart and re-attaches on the new node afterwards.
func (a *App) OnMigration(env *core.Env, component, fromNode, toNode string, downtime time.Duration) {
	until := env.Now() + downtime
	a.downUntil[component] = until
	for _, ch := range a.channels {
		if ch.key.from != component && ch.key.to != component {
			continue
		}
		a.detachChannel(ch)
	}
	env.Engine().At(until, func() {
		if env.Now() < a.downUntil[component] {
			return // superseded by a newer migration
		}
		for _, ch := range a.channels {
			if ch.key.from == component || ch.key.to == component {
				_ = a.attachChannel(ch)
			}
		}
	})
}

// Stop halts request generation.
func (a *App) Stop() {
	if a.stopGen != nil {
		a.stopGen()
		a.stopGen = nil
	}
}

func (a *App) scheduleNext() {
	gap := a.cfg.Arrival.Next(a.env.Engine().Rand())
	stopped := false
	a.stopGen = func() { stopped = true }
	a.env.Engine().After(gap, func() {
		if stopped {
			return
		}
		a.serveRequest()
		a.scheduleNext()
	})
}

// serveRequest samples a request type, computes its end-to-end latency from
// the current network state, and records it.
func (a *App) serveRequest() {
	a.requests++
	r := a.env.Engine().Rand().Float64()
	rt := a.types[len(a.types)-1]
	for _, t := range a.types {
		if r < t.frac {
			rt = t
			break
		}
		r -= t.frac
	}
	lat := a.requestLatency(rt)
	now := a.env.Now()
	a.latency.Observe(now, lat)
	a.byType[rt.name].Observe(now, lat)
}

// requestLatency evaluates the sequential RPC chain of a request under the
// current placement, allocations, queue backlogs, and component downtimes.
func (a *App) requestLatency(rt requestType) time.Duration {
	var lat time.Duration
	waited := make(map[string]bool)
	now := a.env.Now()
	for _, h := range rt.hops {
		if h.async {
			continue
		}
		// A restarting callee stalls the request until it is back.
		if until, down := a.downUntil[h.to]; down && now < until && !waited[h.to] {
			lat += until - now
			waited[h.to] = true
		}
		lat += a.hopLatency(h)
	}
	return lat
}

// hopLatency models one RPC over its channel: round-trip propagation, an
// M/M/1 sojourn per direction whose service rate is the bandwidth a message
// burst attains on that directed path, and the callee's compute time.
// Saturated directions fall back to transmission at the attainable rate plus
// the fluid queue backlog — tc-style egress throttling therefore penalises
// exactly the direction it shapes.
func (a *App) hopLatency(h hop) time.Duration {
	ch := a.channels[edgeKey{from: h.from, to: h.to}]
	svc := a.svcTime[h.to]
	fromNode := a.env.NodeOf(h.from)
	toNode := a.env.NodeOf(h.to)
	msgBits := (h.reqKB + h.respKB) * 8e3

	if fromNode == "" || toNode == "" || fromNode == toNode {
		local := time.Duration(msgBits / (simnet.LocalMbps * 1e6) * float64(time.Second))
		return local + svc
	}

	prop, err := a.env.Net().PathLatencyOf(fromNode, toNode)
	if err != nil {
		prop = 0
	}
	rtt := 2 * prop

	var lambda float64
	if ch != nil {
		lambda = ch.msgsPerSec
	}
	wait := a.directionWait(fromNode, toNode, lambda, chReqBits(ch, h), streamRateOf(a, ch, true))
	wait += a.directionWait(toNode, fromNode, lambda, chRespBits(ch, h), streamRateOf(a, ch, false))
	return rtt + wait + svc
}

// chReqBits returns the channel's mean request size, defaulting to the hop's.
func chReqBits(ch *channel, h hop) float64 {
	if ch != nil && ch.reqBitsPerMsg > 0 {
		return ch.reqBitsPerMsg
	}
	return h.reqKB * 8e3
}

// chRespBits returns the channel's mean response size, defaulting to the
// hop's.
func chRespBits(ch *channel, h hop) float64 {
	if ch != nil && ch.respBitsPerMsg > 0 {
		return ch.respBitsPerMsg
	}
	return h.respKB * 8e3
}

// streamRateOf reads the current allocation of one of the channel's streams.
func streamRateOf(a *App, ch *channel, req bool) float64 {
	if ch == nil {
		return 0
	}
	var id simnet.FlowID
	switch {
	case req && ch.hasReq:
		id = ch.reqStream
	case !req && ch.hasResp:
		id = ch.respStream
	default:
		return 0
	}
	r, err := a.env.Net().StreamRate(id)
	if err != nil {
		return 0
	}
	return r
}

// directionWait is the M/M/1 sojourn of one message direction.
func (a *App) directionWait(srcNode, dstNode string, lambda, meanBits, ownMbps float64) time.Duration {
	if meanBits <= 0 {
		return 0
	}
	spare, err := a.env.Net().PathAllocatedMbps(srcNode, dstNode, simnet.LocalMbps)
	if err != nil {
		spare = 0
	}
	burstBps := (spare + ownMbps) * 1e6
	const minBps = 1e3 // a starved channel still trickles
	if burstBps < minBps {
		burstBps = minBps
	}
	mu := burstBps / meanBits
	if mu > lambda*1.02 {
		return time.Duration(1 / (mu - lambda) * float64(time.Second))
	}
	// Saturated: transmission at the attainable rate plus queue drain.
	q, qerr := a.env.Net().PathQueueDelay(srcNode, dstNode)
	if qerr != nil {
		q = 0
	}
	return time.Duration(meanBits/burstBps*float64(time.Second)) + q
}

// Latency returns the all-requests latency recorder.
func (a *App) Latency() *workload.LatencyRecorder { return a.latency }

// LatencyByType returns the per-request-type recorder.
func (a *App) LatencyByType(name string) (*workload.LatencyRecorder, error) {
	r, ok := a.byType[name]
	if !ok {
		return nil, fmt.Errorf("socialnet: unknown request type %q", name)
	}
	return r, nil
}

// Requests reports how many requests were served.
func (a *App) Requests() int { return a.requests }
