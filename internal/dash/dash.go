// Package dash defines the live dashboard frame bassd streams over /stream
// and bass-top renders: a periodic snapshot of SLO budgets and burn rates,
// firing alerts, per-link headroom, and recent control-plane activity,
// carried as Server-Sent Events (one JSON frame per "data:" event). The
// frame is the wire contract between the daemon and the dashboard; keep it
// backward-compatible or bump the SchemaVersion.
package dash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"bass/internal/obs"
	"bass/internal/slo"
)

// SchemaVersion identifies the frame layout; bass-top refuses frames from a
// different major version.
const SchemaVersion = 1

// LinkStat is one link's (or live peer's) latest probe reading.
type LinkStat struct {
	Link         string  `json:"link"`
	HeadroomMbps float64 `json:"headroomMbps"`
	CapacityMbps float64 `json:"capacityMbps,omitempty"`
	// AgeSec is how stale the reading is, seconds since the last probe.
	AgeSec float64 `json:"ageSec"`
}

// Frame is one dashboard snapshot.
type Frame struct {
	Schema int `json:"schema"`
	// AtMs is the snapshot's wall-clock timestamp (sim frames carry virtual
	// milliseconds since start instead).
	AtMs   int64  `json:"atMs"`
	Sweeps uint64 `json:"sweeps"`
	// Firing counts currently open alerts across all specs and tiers.
	Firing int              `json:"firing"`
	SLOs   []slo.SpecStatus `json:"slos,omitempty"`
	Links  []LinkStat       `json:"links,omitempty"`
	// Alerts are the newest alert_fired/alert_resolved journal events,
	// oldest first; Activity the newest migration/failover/reconcile ones.
	Alerts   []obs.Event `json:"alerts,omitempty"`
	Activity []obs.Event `json:"activity,omitempty"`

	JournalEvents  int    `json:"journalEvents"`
	JournalDropped uint64 `json:"journalDropped,omitempty"`
}

// WriteFrame writes one frame as an SSE data event.
func WriteFrame(w io.Writer, f Frame) error {
	f.Schema = SchemaVersion
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// ReadFrames consumes an SSE stream, calling fn for each decoded frame until
// fn returns false or the stream ends. Non-data SSE lines (comments,
// heartbeats, event names) are skipped.
func ReadFrames(r io.Reader, fn func(Frame) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		payload := strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		if payload == "" {
			continue
		}
		var f Frame
		if err := json.Unmarshal([]byte(payload), &f); err != nil {
			return fmt.Errorf("dash: bad frame: %w", err)
		}
		if f.Schema != SchemaVersion {
			return fmt.Errorf("dash: frame schema %d, want %d", f.Schema, SchemaVersion)
		}
		if !fn(f) {
			return nil
		}
	}
	return sc.Err()
}

// isActivity reports whether an event belongs in the frame's activity pane.
func isActivity(t obs.EventType) bool {
	switch t {
	case obs.EventMigration, obs.EventFailover, obs.EventFailoverQueued,
		obs.EventEvacuate, obs.EventNodeDown, obs.EventNodeRecovered,
		obs.EventReconcileDrift, obs.EventReconcileAction, obs.EventReconcileDegraded,
		obs.EventReconcileShed, obs.EventReconcileRestore:
		return true
	}
	return false
}

// RecentAlerts returns the newest n alert events, oldest first.
func RecentAlerts(events []obs.Event, n int) []obs.Event {
	return tail(events, n, func(t obs.EventType) bool {
		return t == obs.EventAlertFired || t == obs.EventAlertResolved
	})
}

// RecentActivity returns the newest n migration/failover/reconcile events,
// oldest first.
func RecentActivity(events []obs.Event, n int) []obs.Event {
	return tail(events, n, isActivity)
}

func tail(events []obs.Event, n int, keep func(obs.EventType) bool) []obs.Event {
	var out []obs.Event
	for i := len(events) - 1; i >= 0 && len(out) < n; i-- {
		if keep(events[i].Type) {
			out = append(out, events[i])
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
