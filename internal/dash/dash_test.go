package dash

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bass/internal/obs"
	"bass/internal/slo"
)

func TestWriteReadFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{AtMs: 1000, Sweeps: 1, JournalEvents: 3},
		{AtMs: 2000, Sweeps: 2, Firing: 1,
			SLOs:          []slo.SpecStatus{{Name: "mesh/headroom", Kind: slo.LinkHeadroom, Target: 0.99, Good: true}},
			Links:         []LinkStat{{Link: "a-b", HeadroomMbps: 4.5, CapacityMbps: 24, AgeSec: 1.5}},
			Alerts:        []obs.Event{{At: time.Second, Type: obs.EventAlertFired, SLO: "mesh/headroom", Reason: "page 1m0s/5m0s"}},
			JournalEvents: 7, JournalDropped: 2},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	// SSE framing: every frame is one data: line followed by a blank line.
	if got := strings.Count(buf.String(), "data: "); got != len(frames) {
		t.Errorf("stream has %d data events, want %d", got, len(frames))
	}

	var got []Frame
	if err := ReadFrames(&buf, func(f Frame) bool {
		got = append(got, f)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i := range got {
		if got[i].Schema != SchemaVersion {
			t.Errorf("frame %d schema = %d, want %d", i, got[i].Schema, SchemaVersion)
		}
		if got[i].AtMs != frames[i].AtMs || got[i].Sweeps != frames[i].Sweeps ||
			got[i].JournalEvents != frames[i].JournalEvents || got[i].JournalDropped != frames[i].JournalDropped {
			t.Errorf("frame %d = %+v, want %+v", i, got[i], frames[i])
		}
	}
	if len(got[1].SLOs) != 1 || got[1].SLOs[0].Name != "mesh/headroom" {
		t.Errorf("frame 1 SLOs = %+v", got[1].SLOs)
	}
	if len(got[1].Alerts) != 1 || got[1].Alerts[0].Type != obs.EventAlertFired {
		t.Errorf("frame 1 alerts = %+v", got[1].Alerts)
	}
}

func TestReadFramesStopsWhenTold(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, Frame{AtMs: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := ReadFrames(&buf, func(Frame) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("callback ran %d times, want 2", n)
	}
}

func TestReadFramesSkipsNonDataAndRejectsBadSchema(t *testing.T) {
	in := ": heartbeat comment\nevent: frame\n\n" +
		"data: {\"schema\":1,\"atMs\":5,\"sweeps\":0,\"firing\":0,\"journalEvents\":0}\n\n"
	var got []Frame
	if err := ReadFrames(strings.NewReader(in), func(f Frame) bool {
		got = append(got, f)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AtMs != 5 {
		t.Errorf("frames = %+v, want one frame at 5ms", got)
	}

	bad := "data: {\"schema\":99}\n\n"
	if err := ReadFrames(strings.NewReader(bad), func(Frame) bool { return true }); err == nil {
		t.Error("schema 99 accepted, want error")
	}
	if err := ReadFrames(strings.NewReader("data: {not json}\n\n"), func(Frame) bool { return true }); err == nil {
		t.Error("malformed JSON accepted, want error")
	}
}

func TestRecentAlertsAndActivity(t *testing.T) {
	var events []obs.Event
	for i := 0; i < 30; i++ {
		events = append(events, obs.Event{At: time.Duration(i) * time.Second, Type: obs.EventProbeHeadroom, Span: uint64(i)})
		if i%3 == 0 {
			events = append(events, obs.Event{At: time.Duration(i) * time.Second, Type: obs.EventAlertFired, Span: uint64(100 + i)})
		}
		if i%5 == 0 {
			events = append(events, obs.Event{At: time.Duration(i) * time.Second, Type: obs.EventMigration, Span: uint64(200 + i)})
		}
	}

	alerts := RecentAlerts(events, 4)
	if len(alerts) != 4 {
		t.Fatalf("RecentAlerts returned %d, want 4", len(alerts))
	}
	for i, ev := range alerts {
		if ev.Type != obs.EventAlertFired {
			t.Errorf("alert %d type = %s", i, ev.Type)
		}
		if i > 0 && alerts[i-1].At > ev.At {
			t.Errorf("alerts not oldest-first: %v then %v", alerts[i-1].At, ev.At)
		}
	}
	// Newest alert is at i=27.
	if alerts[len(alerts)-1].Span != 127 {
		t.Errorf("newest alert span = %d, want 127", alerts[len(alerts)-1].Span)
	}

	activity := RecentActivity(events, 10)
	if len(activity) != 6 { // migrations at i = 0,5,...,25
		t.Errorf("RecentActivity returned %d, want all 6 migrations", len(activity))
	}
	for _, ev := range activity {
		if ev.Type != obs.EventMigration {
			t.Errorf("activity type = %s, want migration only", ev.Type)
		}
	}

	if got := RecentAlerts(nil, 5); len(got) != 0 {
		t.Errorf("RecentAlerts(nil) = %v, want empty", got)
	}
}
