package mesh

import (
	"fmt"
	"math/rand"
	"time"

	"bass/internal/trace"
)

// GridOptions parameterises City-scale grid construction.
type GridOptions struct {
	// Rows and Cols set the lattice dimensions (Rows*Cols nodes).
	Rows, Cols int
	// Seed keys every per-link capacity trace (link index is mixed in).
	Seed int64
	// Duration is the trace horizon (default 10 min).
	Duration time.Duration
	// MeanMbps is the average link capacity (default 25, the CityLab
	// node3-node4 class); JitterFrac spreads per-link means and step levels
	// around it (default 0.3).
	MeanMbps   float64
	JitterFrac float64
	// ChangesPerLink is the number of capacity steps each link takes over
	// the horizon (default 6): enough churn that most 1-second grid ticks
	// carry at least one capacity event at city scale.
	ChangesPerLink int
	// LatencyMS is the per-hop one-way latency (default 3 ms).
	LatencyMS float64
}

func (o GridOptions) withDefaults() GridOptions {
	if o.Duration == 0 {
		o.Duration = 10 * time.Minute
	}
	if o.MeanMbps == 0 {
		o.MeanMbps = 25
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.3
	}
	if o.ChangesPerLink == 0 {
		o.ChangesPerLink = 6
	}
	if o.LatencyMS == 0 {
		o.LatencyMS = 3
	}
	return o
}

// GridNodeName names the lattice node at (row, col); zero-padded so node
// order is identical under lexicographic and row-major sort.
func GridNodeName(row, col int) string { return fmt.Sprintf("r%03dc%03d", row, col) }

// Grid builds a Rows×Cols lattice mesh — the city-scale stand-in for a
// community network laid out street by street — with right/down neighbour
// links whose capacities follow seeded step traces. Construction is fully
// deterministic in (options, seed).
func Grid(opts GridOptions) (*Topology, error) {
	opts = opts.withDefaults()
	if opts.Rows < 1 || opts.Cols < 1 {
		return nil, fmt.Errorf("mesh: grid dimensions %dx%d out of range", opts.Rows, opts.Cols)
	}
	t := NewTopology()
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			t.AddNode(GridNodeName(r, c))
		}
	}
	latency := time.Duration(opts.LatencyMS * float64(time.Millisecond))
	link := 0
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			if c+1 < opts.Cols {
				if err := addGridLink(t, opts, GridNodeName(r, c), GridNodeName(r, c+1), link, latency); err != nil {
					return nil, err
				}
				link++
			}
			if r+1 < opts.Rows {
				if err := addGridLink(t, opts, GridNodeName(r, c), GridNodeName(r+1, c), link, latency); err != nil {
					return nil, err
				}
				link++
			}
		}
	}
	return t, nil
}

// addGridLink attaches one step-trace link. Each link gets its own RNG
// stream (seed mixed with the link index by a large prime, the same recipe
// CityLab uses), so adding links never perturbs earlier traces.
func addGridLink(t *Topology, opts GridOptions, a, b string, idx int, latency time.Duration) error {
	rng := rand.New(rand.NewSource(opts.Seed + int64(idx)*7919))
	level := func() float64 {
		v := opts.MeanMbps * (1 + opts.JitterFrac*(2*rng.Float64()-1))
		if v < 1 {
			v = 1
		}
		return v
	}
	levels := make([]trace.Level, 0, opts.ChangesPerLink+1)
	levels = append(levels, trace.Level{From: 0, Mbps: level()})
	horizon := int(opts.Duration / time.Second)
	for i := 0; i < opts.ChangesPerLink && horizon > 1; i++ {
		at := time.Duration(1+rng.Intn(horizon-1)) * time.Second
		levels = append(levels, trace.Level{From: at, Mbps: level()})
	}
	tr := trace.StepTrace(MakeLinkID(a, b).String(), time.Second, opts.Duration, levels)
	return t.AddLink(a, b, tr, latency)
}
