package mesh

import (
	"testing"
	"time"

	"bass/internal/trace"
)

func TestPathLinksMissing(t *testing.T) {
	topo := square(t)
	if _, err := topo.PathLinks([]string{"a", "ghost"}); err == nil {
		t.Error("path over missing link: want error")
	}
	links, err := topo.PathLinks([]string{"a"})
	if err != nil || links != nil {
		t.Errorf("single-node path: %v, %v", links, err)
	}
}

func TestPathCapacityUnknownNode(t *testing.T) {
	topo := square(t)
	if _, _, err := topo.PathCapacityAt("ghost", "a", 0); err == nil {
		t.Error("unknown src: want error")
	}
}

func TestPathLatencyNoPath(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	if _, err := topo.PathLatency("a", "b"); err == nil {
		t.Error("no path: want error")
	}
}

func TestCapacityAtMissingLink(t *testing.T) {
	topo := square(t)
	if _, err := topo.CapacityAt("a", "ghost", 0); err == nil {
		t.Error("missing link: want error")
	}
}

func TestHasNodeAndLink(t *testing.T) {
	topo := square(t)
	if !topo.HasNode("a") || topo.HasNode("zzz") {
		t.Error("HasNode wrong")
	}
	if _, ok := topo.Link("a", "b"); !ok {
		t.Error("Link(a,b) missing")
	}
	if _, ok := topo.Link("a", "zzz"); ok {
		t.Error("Link to unknown node found")
	}
}

func TestDirectedThrottleAffectsPathCapacity(t *testing.T) {
	topo := square(t)
	if err := topo.SetDirectedCapacity("a", "b", trace.Constant("ab", time.Second, 1, 60)); err != nil {
		t.Fatal(err)
	}
	fwd, _, err := topo.PathCapacityAt("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	rev, _, err := topo.PathCapacityAt("b", "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fwd != 1 {
		t.Errorf("a→b capacity = %v, want throttled 1", fwd)
	}
	if rev != 10 {
		t.Errorf("b→a capacity = %v, want original 10", rev)
	}
}
