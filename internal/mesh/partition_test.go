package mesh

import (
	"reflect"
	"testing"
	"time"

	"bass/internal/trace"
)

func gridOrDie(t *testing.T, rows, cols int, seed int64) *Topology {
	t.Helper()
	topo, err := Grid(GridOptions{Rows: rows, Cols: cols, Seed: seed, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestPartitionDeterministic pins the byte-identity prerequisite: equal
// (topology, k, seed) triples must produce identical region maps.
func TestPartitionDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a, err := PartitionTopology(gridOrDie(t, 8, 8, seed), 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PartitionTopology(gridOrDie(t, 8, 8, seed), 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.regionOf, b.regionOf) {
			t.Fatalf("seed %d: repeated partition differs", seed)
		}
		if !reflect.DeepEqual(a.Gateways(), b.Gateways()) {
			t.Fatalf("seed %d: gateway sets differ", seed)
		}
	}
}

// TestPartitionCoversAllNodes: every node lands in exactly one region and
// region sizes stay balanced on a connected grid.
func TestPartitionCoversAllNodes(t *testing.T) {
	topo := gridOrDie(t, 10, 10, 3)
	p, err := PartitionTopology(topo, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range topo.Nodes() {
		r := p.Region(n)
		if r < 0 || r >= p.K() {
			t.Fatalf("node %s in region %d", n, r)
		}
	}
	min, max := 1 << 30, 0
	for _, s := range p.Sizes() {
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if total != 100 {
		t.Fatalf("sizes sum to %d, want 100", total)
	}
	// Balanced multi-source BFS keeps connected-graph regions close: a
	// region can fall a couple of claims behind when its frontier is briefly
	// walled in, but never drift past a few percent of the mesh.
	if max-min > 5 {
		t.Errorf("region sizes %v unbalanced", p.Sizes())
	}
}

// TestPartitionGateways: every gateway link crosses regions and every
// cross-region link is reported as a gateway.
func TestPartitionGateways(t *testing.T) {
	topo := gridOrDie(t, 6, 6, 9)
	p, err := PartitionTopology(topo, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	gw := map[LinkID]bool{}
	for _, id := range p.Gateways() {
		if p.Region(id.A) == p.Region(id.B) {
			t.Errorf("gateway %s is intra-region", id)
		}
		gw[id] = true
	}
	for _, l := range topo.Links() {
		crosses := p.Region(l.ID.A) != p.Region(l.ID.B)
		if crosses != gw[l.ID] {
			t.Errorf("link %s: crosses=%v gateway=%v", l.ID, crosses, gw[l.ID])
		}
	}
	if len(gw) == 0 {
		t.Error("3-way split of a 6x6 grid produced no gateway links")
	}
}

// TestPartitionRange pins the error contract benchtab's -shards validation
// leans on.
func TestPartitionRange(t *testing.T) {
	topo := gridOrDie(t, 2, 2, 1)
	for _, k := range []int{0, -1, 5} {
		if _, err := PartitionTopology(topo, k, 1); err == nil {
			t.Errorf("k=%d: no error", k)
		}
	}
	p, err := PartitionTopology(topo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Gateways()) != 0 {
		t.Errorf("k=1 produced gateways %v", p.Gateways())
	}
	if p.Region("nope") != -1 {
		t.Error("unknown node did not map to -1")
	}
}

// TestPartitionDisconnected: nodes unreachable from any center still get
// assigned, deterministically, to the smallest region.
func TestPartitionDisconnected(t *testing.T) {
	topo := NewTopology()
	for _, n := range []string{"a", "b", "c", "x", "y"} {
		topo.AddNode(n)
	}
	tr := func(n string) *trace.Trace { return trace.Constant(n, time.Second, 10, 60) }
	if err := topo.AddLink("a", "b", tr("ab"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("b", "c", tr("bc"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("x", "y", tr("xy"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p, err := PartitionTopology(topo, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c", "x", "y"} {
		if p.Region(n) < 0 {
			t.Errorf("node %s unassigned", n)
		}
	}
	q, err := PartitionTopology(topo, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.regionOf, q.regionOf) {
		t.Error("disconnected assignment not deterministic")
	}
}

// TestGridDeterministic: same options → identical traces; the scale bench
// and its differential tests rely on this.
func TestGridDeterministic(t *testing.T) {
	a := gridOrDie(t, 5, 5, 21)
	b := gridOrDie(t, 5, 5, 21)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	// 5x5 grid: 2*5*4 = 40 right/down links.
	if len(la) != 40 {
		t.Fatalf("got %d links, want 40", len(la))
	}
	for i := range la {
		if la[i].ID != lb[i].ID {
			t.Fatalf("link %d: %s vs %s", i, la[i].ID, lb[i].ID)
		}
		ca, err := la[i].CapacityToward(la[i].ID.A, la[i].ID.B)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := lb[i].CapacityToward(lb[i].ID.A, lb[i].ID.B)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ca.Mbps, cb.Mbps) {
			t.Fatalf("link %s traces differ", la[i].ID)
		}
	}
}
