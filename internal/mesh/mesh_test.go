package mesh

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"bass/internal/trace"
)

func square(t testing.TB) *Topology {
	t.Helper()
	// a - b
	// |   |
	// d - c     plus a shortcut a-c
	topo := NewTopology()
	for _, n := range []string{"a", "b", "c", "d"} {
		topo.AddNode(n)
	}
	mk := func(mbps float64) *trace.Trace { return trace.Constant("", time.Second, mbps, 60) }
	topo.MustAddLink("a", "b", mk(10), time.Millisecond)
	topo.MustAddLink("b", "c", mk(20), time.Millisecond)
	topo.MustAddLink("c", "d", mk(30), time.Millisecond)
	topo.MustAddLink("d", "a", mk(40), time.Millisecond)
	topo.MustAddLink("a", "c", mk(5), 2*time.Millisecond)
	return topo
}

func TestMakeLinkID(t *testing.T) {
	if got := MakeLinkID("z", "a"); got != (LinkID{A: "a", B: "z"}) {
		t.Errorf("MakeLinkID = %v", got)
	}
	if got := MakeLinkID("a", "z").String(); got != "a-z" {
		t.Errorf("String = %q", got)
	}
}

func TestAddLinkErrors(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	tr := trace.Constant("", time.Second, 1, 1)
	if err := topo.AddLink("a", "a", tr, 0); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self link: %v", err)
	}
	if err := topo.AddLink("a", "zz", tr, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: %v", err)
	}
	if err := topo.AddLink("a", "b", tr, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("b", "a", tr, 0); !errors.Is(err, ErrDuplicateLink) {
		t.Errorf("duplicate (reversed) link: %v", err)
	}
}

func TestRouteShortestHops(t *testing.T) {
	topo := square(t)
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	// Direct a-c link exists: one hop beats two.
	if !reflect.DeepEqual(path, []string{"a", "c"}) {
		t.Errorf("Route(a,c) = %v", path)
	}
	path, err = topo.Route("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("Route(b,d) = %v, want 2 hops", path)
	}
	self, err := topo.Route("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(self, []string{"a"}) {
		t.Errorf("Route(a,a) = %v", self)
	}
}

func TestRouteNoPath(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("island")
	if _, err := topo.Route("a", "island"); !errors.Is(err, ErrNoPath) {
		t.Errorf("want ErrNoPath, got %v", err)
	}
	if _, err := topo.Route("ghost", "a"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("want ErrUnknownNode, got %v", err)
	}
}

func TestRouteDeterministicTieBreak(t *testing.T) {
	// Two equal-hop paths s-x-t and s-y-t: BFS with sorted adjacency must
	// always pick the lexicographically first.
	topo := NewTopology()
	for _, n := range []string{"s", "t", "x", "y"} {
		topo.AddNode(n)
	}
	mk := func() *trace.Trace { return trace.Constant("", time.Second, 10, 1) }
	topo.MustAddLink("s", "y", mk(), 0)
	topo.MustAddLink("y", "t", mk(), 0)
	topo.MustAddLink("s", "x", mk(), 0)
	topo.MustAddLink("x", "t", mk(), 0)
	for i := 0; i < 5; i++ {
		path, err := topo.Route("s", "t")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(path, []string{"s", "x", "t"}) {
			t.Fatalf("Route = %v, want s,x,t", path)
		}
	}
}

func TestPathCapacityBottleneck(t *testing.T) {
	topo := square(t)
	mbps, networked, err := topo.PathCapacityAt("b", "d", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !networked {
		t.Fatal("b-d should be networked")
	}
	// Path b-a-d (lexicographic tie-break): min(10, 40) = 10, or b-c-d:
	// min(20,30)=20. BFS visits a before c from b.
	if mbps != 10 {
		t.Errorf("bottleneck = %v, want 10", mbps)
	}
	_, networked, err = topo.PathCapacityAt("a", "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if networked {
		t.Error("self path must report networked=false")
	}
}

func TestPathLatency(t *testing.T) {
	topo := square(t)
	lat, err := topo.PathLatency("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	if lat != 2*time.Millisecond {
		t.Errorf("PathLatency = %v", lat)
	}
}

func TestSetCapacity(t *testing.T) {
	topo := square(t)
	if err := topo.SetCapacity("a", "b", trace.Constant("", time.Second, 99, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := topo.CapacityAt("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("CapacityAt = %v", got)
	}
	if err := topo.SetCapacity("a", "ghost", nil); err == nil {
		t.Error("SetCapacity on missing link: want error")
	}
}

func TestNeighborsSorted(t *testing.T) {
	topo := square(t)
	if got := topo.Neighbors("a"); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Errorf("Neighbors(a) = %v", got)
	}
}

func TestCityLabTopology(t *testing.T) {
	topo := MustCityLab(CityLabOptions{Seed: 1})
	if got := len(topo.Nodes()); got != 5 {
		t.Fatalf("CityLab has %d nodes, want 5 (Fig 15a)", got)
	}
	if got := len(topo.Links()); got != len(CityLabLinks()) {
		t.Fatalf("CityLab has %d links, want %d", len(topo.Links()), len(CityLabLinks()))
	}
	// Fig 8 fixes the node3-node4 link at 25 Mbps mean.
	l, ok := topo.Link(CityLabNode3, CityLabNode4)
	if !ok {
		t.Fatal("missing node3-node4 link")
	}
	mean := l.CapacityFwd().Mean()
	if mean < 20 || mean > 30 {
		t.Errorf("node3-node4 mean = %.1f, want ≈25", mean)
	}
	// Every worker pair must be mutually reachable.
	names := topo.Nodes()
	for _, a := range names {
		for _, b := range names {
			if _, err := topo.Route(a, b); err != nil {
				t.Errorf("Route(%s,%s): %v", a, b, err)
			}
		}
	}
}

func TestCityLabStatic(t *testing.T) {
	topo := MustCityLab(CityLabOptions{Seed: 1, Static: true, Duration: 5 * time.Minute})
	for _, l := range topo.Links() {
		if l.CapacityFwd().StdDev() > 1e-9 {
			t.Errorf("static CityLab link %s varies (std=%v)", l.ID, l.CapacityFwd().StdDev())
		}
	}
}

func TestLineAndFullMesh(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	line := Line(names, 100, time.Millisecond, time.Minute)
	if got := len(line.Links()); got != 2 {
		t.Errorf("Line links = %d", got)
	}
	full := FullMesh(names, 100, time.Millisecond, time.Minute)
	if got := len(full.Links()); got != 3 {
		t.Errorf("FullMesh links = %d", got)
	}
	path, err := full.Route("n1", "n3")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("full mesh route = %v, want direct", path)
	}
}

func TestAvailabilityState(t *testing.T) {
	topo := square(t)
	id := MakeLinkID("a", "b")

	if !topo.NodeUp("a") || !topo.LinkUp("a", "b") || !topo.LinkAvailable(id) {
		t.Fatal("fresh topology should be fully up")
	}
	if err := topo.SetNodeUp("ghost", false); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SetNodeUp unknown: %v", err)
	}
	if err := topo.SetLinkUp("a", "ghost", false); !errors.Is(err, ErrUnknownLink) {
		t.Errorf("SetLinkUp unknown: %v", err)
	}

	// A down link is administratively down but its endpoints stay up.
	if err := topo.SetLinkUp("a", "b", false); err != nil {
		t.Fatal(err)
	}
	if topo.LinkUp("a", "b") || topo.LinkAvailable(id) {
		t.Error("downed link still reported up/available")
	}
	if mbps, err := topo.CapacityAt("a", "b", 0); err != nil || mbps != 0 {
		t.Errorf("CapacityAt over down link = %v, %v; want 0, nil", mbps, err)
	}
	if err := topo.SetLinkUp("a", "b", true); err != nil {
		t.Fatal(err)
	}
	if !topo.LinkAvailable(id) {
		t.Error("link not available after SetLinkUp(true)")
	}

	// A down node takes every incident link with it, though the links
	// themselves stay administratively up.
	if err := topo.SetNodeUp("a", false); err != nil {
		t.Fatal(err)
	}
	if topo.NodeUp("a") {
		t.Error("a still up")
	}
	if !topo.LinkUp("a", "b") {
		t.Error("a-b should stay administratively up under a node crash")
	}
	if topo.LinkAvailable(id) || topo.LinkAvailable(MakeLinkID("a", "d")) {
		t.Error("links incident to a dead node must be unavailable")
	}
	if got := topo.DownNodes(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("DownNodes = %v", got)
	}
	if err := topo.SetNodeUp("a", true); err != nil {
		t.Fatal(err)
	}
	if len(topo.DownNodes()) != 0 || !topo.LinkAvailable(id) {
		t.Error("recovery did not restore availability")
	}
}

func TestRouteAvoidsDownElements(t *testing.T) {
	topo := square(t)

	// Routing to or from a dead node fails typed.
	if err := topo.SetNodeUp("b", false); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Route("b", "c"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("route from dead node: %v", err)
	}
	if _, err := topo.Route("a", "b"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("route to dead node: %v", err)
	}
	// Routing through it detours: a->c still works via the shortcut.
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	for _, hop := range path {
		if hop == "b" {
			t.Errorf("route %v crosses dead node b", path)
		}
	}

	// Down links force detours too; cutting the last remaining path
	// partitions the pair.
	if err := topo.SetNodeUp("b", true); err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}} {
		if err := topo.SetLinkUp(cut[0], cut[1], false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := topo.Route("a", "c"); !errors.Is(err, ErrNoPath) {
		t.Errorf("route from isolated node: %v", err)
	}
}
