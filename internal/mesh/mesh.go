// Package mesh models the wireless mesh substrate: an undirected topology of
// nodes joined by links whose capacity varies over time (driven by package
// trace), plus the decentralised routing view BASS assumes — the orchestrator
// cannot control routing, it can only discover paths (traceroute) and treat
// the path capacity as the bottleneck link along it (§4.2).
package mesh

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bass/internal/trace"
)

// Sentinel errors.
var (
	ErrUnknownNode   = errors.New("mesh: unknown node")
	ErrDuplicateLink = errors.New("mesh: duplicate link")
	ErrNoPath        = errors.New("mesh: no path")
	ErrSelfLink      = errors.New("mesh: self link")
	ErrNodeDown      = errors.New("mesh: node down")
	ErrUnknownLink   = errors.New("mesh: unknown link")
)

// LinkID identifies an undirected link by its two endpoints in lexicographic
// order.
type LinkID struct {
	A, B string
}

// MakeLinkID normalises the endpoint order.
func MakeLinkID(a, b string) LinkID {
	if a > b {
		a, b = b, a
	}
	return LinkID{A: a, B: b}
}

// String renders the link as "a-b".
func (l LinkID) String() string { return l.A + "-" + l.B }

// Link is one wireless link with time-varying, per-direction capacity.
// Wireless links are roughly symmetric (the paper reports "similar bandwidth
// in both directions"), so links are constructed with one trace for both
// directions; tc-style directional shaping (throttling a node's outgoing
// interface, as the paper's experiments do) is applied with
// SetCapacityToward.
type Link struct {
	ID LinkID
	// capFwd is the A→B capacity; capRev is B→A.
	capFwd *trace.Trace
	capRev *trace.Trace
	// LatencyOneWay is the propagation + MAC latency per traversal.
	LatencyOneWay time.Duration
}

// CapacityToward returns the capacity trace for the from→to direction.
func (l *Link) CapacityToward(from, to string) (*trace.Trace, error) {
	switch {
	case from == l.ID.A && to == l.ID.B:
		return l.capFwd, nil
	case from == l.ID.B && to == l.ID.A:
		return l.capRev, nil
	default:
		return nil, fmt.Errorf("mesh: %s-%s is not a direction of link %s", from, to, l.ID)
	}
}

// SetCapacityToward replaces the capacity trace of one direction.
func (l *Link) SetCapacityToward(from, to string, capacity *trace.Trace) error {
	switch {
	case from == l.ID.A && to == l.ID.B:
		l.capFwd = capacity
	case from == l.ID.B && to == l.ID.A:
		l.capRev = capacity
	default:
		return fmt.Errorf("mesh: %s-%s is not a direction of link %s", from, to, l.ID)
	}
	return nil
}

// MinCapacityAt reports the lower of the two directions' capacities at
// offset at — what a direction-agnostic probe of the link observes.
func (l *Link) MinCapacityAt(at time.Duration) float64 {
	fwd := l.capFwd.At(at)
	if rev := l.capRev.At(at); rev < fwd {
		return rev
	}
	return fwd
}

// CapacityFwd returns the A→B trace (for characterisation and tests; both
// directions are identical until SetCapacityToward splits them).
func (l *Link) CapacityFwd() *trace.Trace { return l.capFwd }

// CapacityDir returns the capacity trace of the forward (A→B) or reverse
// (B→A) direction. Reading through the link (rather than caching the trace
// pointer) keeps hot-path consumers current across mid-run trace swaps.
func (l *Link) CapacityDir(fwd bool) *trace.Trace {
	if fwd {
		return l.capFwd
	}
	return l.capRev
}

// Topology is the mesh graph. Construct once, then query from any number of
// goroutines; mutation after construction is not synchronised. Fault
// injection flips node/link availability at run time (single-goroutine, like
// all mutation): a down node or link stays in the graph but is invisible to
// routing, modelling a crashed router or a radio outage.
type Topology struct {
	nodes     map[string]bool
	nodeOrder []string
	links     map[LinkID]*Link
	adj       map[string][]string
	downNodes map[string]bool
	downLinks map[LinkID]bool

	// availEpoch counts graph-shape changes: availability flips and link/node
	// additions. Routes computed under one epoch stay valid for its duration,
	// which is what makes the route cache sound.
	availEpoch uint64

	// capListeners are invoked when a link's capacity trace is swapped via
	// SetCapacity/SetDirectedCapacity (which ThrottleEgress routes through).
	// Registration and invocation are mutation, i.e. single-goroutine.
	capListeners []func(LinkID)

	// mu guards the route cache and its BFS scratch. Queries are documented
	// as safe from any number of goroutines, and with memoisation a query is
	// no longer read-only under the hood.
	mu          sync.Mutex
	routeCache  map[routeKey][]string
	bfsPrev     map[string]string
	bfsQueue    []string
	sortedLinks []*Link
}

type routeKey struct{ src, dst string }

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes:      make(map[string]bool),
		links:      make(map[LinkID]*Link),
		adj:        make(map[string][]string),
		downNodes:  make(map[string]bool),
		downLinks:  make(map[LinkID]bool),
		routeCache: make(map[routeKey][]string),
	}
}

// AddNode registers a node; adding an existing node is a no-op.
func (t *Topology) AddNode(name string) {
	if !t.nodes[name] {
		t.nodes[name] = true
		t.nodeOrder = append(t.nodeOrder, name)
	}
}

// HasNode reports whether the node exists.
func (t *Topology) HasNode(name string) bool { return t.nodes[name] }

// Nodes returns node names in insertion order.
func (t *Topology) Nodes() []string {
	out := make([]string, len(t.nodeOrder))
	copy(out, t.nodeOrder)
	return out
}

// AddLink joins two existing nodes with a capacity trace.
func (t *Topology) AddLink(a, b string, capacity *trace.Trace, latency time.Duration) error {
	if a == b {
		return fmt.Errorf("%w: %q", ErrSelfLink, a)
	}
	if !t.nodes[a] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, a)
	}
	if !t.nodes[b] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, b)
	}
	id := MakeLinkID(a, b)
	if _, ok := t.links[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateLink, id)
	}
	t.links[id] = &Link{ID: id, capFwd: capacity, capRev: capacity, LatencyOneWay: latency}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	sort.Strings(t.adj[a])
	sort.Strings(t.adj[b])
	t.bumpEpoch()
	t.mu.Lock()
	t.sortedLinks = nil
	t.mu.Unlock()
	return nil
}

// bumpEpoch advances the availability epoch and drops every cached route.
func (t *Topology) bumpEpoch() {
	t.availEpoch++
	t.mu.Lock()
	clear(t.routeCache)
	t.mu.Unlock()
}

// AvailabilityEpoch reports the current epoch: it advances whenever the
// routable graph changes (node/link availability flips, link additions), so
// consumers can cache route-derived state and invalidate it cheaply.
func (t *Topology) AvailabilityEpoch() uint64 { return t.availEpoch }

// OnCapacityChange registers a callback invoked whenever a link's capacity
// trace is replaced mid-run (SetCapacity, SetDirectedCapacity, and
// ThrottleEgress). The network simulator uses it to reschedule trace-driven
// capacity events. Like all mutation, registration is single-goroutine.
func (t *Topology) OnCapacityChange(fn func(LinkID)) {
	t.capListeners = append(t.capListeners, fn)
}

func (t *Topology) notifyCapacityChange(id LinkID) {
	for _, fn := range t.capListeners {
		fn(id)
	}
}

// MustAddLink is AddLink for statically known topologies; it panics on error.
func (t *Topology) MustAddLink(a, b string, capacity *trace.Trace, latency time.Duration) {
	if err := t.AddLink(a, b, capacity, latency); err != nil {
		panic(err)
	}
}

// SetCapacity replaces the capacity trace on both directions of an existing
// link, used by experiments that throttle a link mid-run.
func (t *Topology) SetCapacity(a, b string, capacity *trace.Trace) error {
	l, ok := t.links[MakeLinkID(a, b)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPath, MakeLinkID(a, b))
	}
	l.capFwd = capacity
	l.capRev = capacity
	t.notifyCapacityChange(l.ID)
	return nil
}

// SetDirectedCapacity replaces the capacity trace of the from→to direction
// only — the equivalent of tc-shaping one interface's egress, as the paper's
// experiments do to nodes 2 and 3 (§6.2.3).
func (t *Topology) SetDirectedCapacity(from, to string, capacity *trace.Trace) error {
	l, ok := t.links[MakeLinkID(from, to)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPath, MakeLinkID(from, to))
	}
	if err := l.SetCapacityToward(from, to, capacity); err != nil {
		return err
	}
	t.notifyCapacityChange(l.ID)
	return nil
}

// ThrottleEgress applies the capacity trace to the outgoing direction of
// every link of the node, modelling tc on the node's interface.
func (t *Topology) ThrottleEgress(node string, capacity *trace.Trace) error {
	if !t.nodes[node] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	for _, nb := range t.adj[node] {
		if err := t.SetDirectedCapacity(node, nb, capacity); err != nil {
			return err
		}
	}
	return nil
}

// SetNodeUp marks a node as up (true) or crashed (false). A down node keeps
// its links and placements in the data structures, but routing treats it —
// and every link incident to it — as absent.
func (t *Topology) SetNodeUp(name string, up bool) error {
	if !t.nodes[name] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	if up == !t.downNodes[name] {
		return nil // no transition: routes stay valid
	}
	if up {
		delete(t.downNodes, name)
	} else {
		t.downNodes[name] = true
	}
	t.bumpEpoch()
	return nil
}

// NodeUp reports whether a node is currently up (unknown nodes are down).
func (t *Topology) NodeUp(name string) bool {
	return t.nodes[name] && !t.downNodes[name]
}

// SetLinkUp marks a link as up (true) or down (false). A down link stays in
// the topology but routing skips it and its effective capacity is zero.
func (t *Topology) SetLinkUp(a, b string, up bool) error {
	id := MakeLinkID(a, b)
	if _, ok := t.links[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, id)
	}
	if up == !t.downLinks[id] {
		return nil // no transition
	}
	if up {
		delete(t.downLinks, id)
	} else {
		t.downLinks[id] = true
	}
	t.bumpEpoch()
	return nil
}

// LinkUp reports whether the link itself is administratively up (it may still
// be unusable because an endpoint node is down; see LinkAvailable).
func (t *Topology) LinkUp(a, b string) bool {
	id := MakeLinkID(a, b)
	_, ok := t.links[id]
	return ok && !t.downLinks[id]
}

// LinkAvailable reports whether traffic can cross the link right now: the
// link is up and both endpoint nodes are up.
func (t *Topology) LinkAvailable(id LinkID) bool {
	if _, ok := t.links[id]; !ok {
		return false
	}
	return !t.downLinks[id] && !t.downNodes[id.A] && !t.downNodes[id.B]
}

// DownNodes returns the currently-down node names, sorted.
func (t *Topology) DownNodes() []string {
	out := make([]string, 0, len(t.downNodes))
	for n := range t.downNodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Link returns the link between two nodes, if present.
func (t *Topology) Link(a, b string) (*Link, bool) {
	l, ok := t.links[MakeLinkID(a, b)]
	return l, ok
}

// Links returns all links sorted by ID. The slice is cached and shared
// between calls (invalidated by AddLink): callers must treat it as
// read-only.
func (t *Topology) Links() []*Link {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sortedLinks != nil {
		return t.sortedLinks
	}
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.A != out[j].ID.A {
			return out[i].ID.A < out[j].ID.A
		}
		return out[i].ID.B < out[j].ID.B
	})
	t.sortedLinks = out
	return out
}

// Neighbors returns the 1-hop neighbors of a node, sorted.
func (t *Topology) Neighbors(name string) []string {
	out := make([]string, len(t.adj[name]))
	copy(out, t.adj[name])
	return out
}

// CapacityAt returns the capacity of the a→b direction in Mbps at offset at.
// An unavailable link (down, or with a down endpoint) has zero capacity.
func (t *Topology) CapacityAt(a, b string, at time.Duration) (float64, error) {
	l, ok := t.links[MakeLinkID(a, b)]
	if !ok {
		return 0, fmt.Errorf("mesh: no link %s", MakeLinkID(a, b))
	}
	if !t.LinkAvailable(l.ID) {
		return 0, nil
	}
	tr, err := l.CapacityToward(a, b)
	if err != nil {
		return 0, err
	}
	return tr.At(at), nil
}

// Route returns the minimum-hop path from src to dst (inclusive), breaking
// ties lexicographically — a deterministic stand-in for the mesh's own
// decentralised routing, which BASS treats as a black box it can only
// observe. A node routes to itself via the single-element path. Down nodes
// and down links are invisible, exactly as a converged mesh routing protocol
// would see them: routing to or through a dead element fails or detours.
//
// Routes are memoised per (src, dst) and invalidated whenever the
// availability epoch advances, so steady-state queries cost two map lookups
// and no allocation. The returned slice is shared with the cache: callers
// must treat it as read-only.
func (t *Topology) Route(src, dst string) ([]string, error) {
	if !t.nodes[src] {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	if !t.nodes[dst] {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	if t.downNodes[src] {
		return nil, fmt.Errorf("%w: %q", ErrNodeDown, src)
	}
	if t.downNodes[dst] {
		return nil, fmt.Errorf("%w: %q", ErrNodeDown, dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := routeKey{src: src, dst: dst}
	if path, ok := t.routeCache[key]; ok {
		if path == nil {
			return nil, fmt.Errorf("%w: %s -> %s", ErrNoPath, src, dst)
		}
		return path, nil
	}
	path := t.bfs(src, dst)
	t.routeCache[key] = path // negative results cache as nil
	if path == nil {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoPath, src, dst)
	}
	return path, nil
}

// bfs runs the minimum-hop search with reused scratch (prev map, queue).
// Callers hold t.mu. The returned path slice is freshly allocated (it is
// retained by the cache and handed to callers, who must not modify it).
func (t *Topology) bfs(src, dst string) []string {
	if t.bfsPrev == nil {
		t.bfsPrev = make(map[string]string, len(t.nodes))
	} else {
		clear(t.bfsPrev)
	}
	prev := t.bfsPrev
	queue := t.bfsQueue[:0]
	prev[src] = src
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur == dst {
			break
		}
		for _, nb := range t.adj[cur] {
			if t.downNodes[nb] || t.downLinks[MakeLinkID(cur, nb)] {
				continue
			}
			if _, seen := prev[nb]; !seen {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	t.bfsQueue = queue
	if _, ok := prev[dst]; !ok {
		return nil
	}
	n := 1
	for cur := dst; cur != src; cur = prev[cur] {
		n++
	}
	path := make([]string, n)
	for cur, i := dst, n-1; i >= 0; cur, i = prev[cur], i-1 {
		path[i] = cur
	}
	return path
}

// PathLinks returns the links along a path.
func (t *Topology) PathLinks(path []string) ([]*Link, error) {
	if len(path) < 2 {
		return nil, nil
	}
	out := make([]*Link, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		l, ok := t.Link(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("mesh: path uses missing link %s-%s", path[i], path[i+1])
		}
		out = append(out, l)
	}
	return out, nil
}

// PathCapacityAt returns the bottleneck capacity in Mbps between two nodes at
// offset at, following the routed path — exactly how the BASS net-monitor
// estimates node-pair capacity (§4.2). Co-located endpoints report +Inf via
// ok=false semantics: the second return is false when src == dst (no network
// involved).
func (t *Topology) PathCapacityAt(src, dst string, at time.Duration) (mbps float64, networked bool, err error) {
	path, err := t.Route(src, dst)
	if err != nil {
		return 0, false, err
	}
	links, err := t.PathLinks(path)
	if err != nil {
		return 0, false, err
	}
	if len(links) == 0 {
		return 0, false, nil
	}
	bottleneck := -1.0
	for i, l := range links {
		tr, terr := l.CapacityToward(path[i], path[i+1])
		if terr != nil {
			return 0, false, terr
		}
		c := tr.At(at)
		if bottleneck < 0 || c < bottleneck {
			bottleneck = c
		}
	}
	return bottleneck, true, nil
}

// PathLatency sums one-way link latencies along the routed path.
func (t *Topology) PathLatency(src, dst string) (time.Duration, error) {
	path, err := t.Route(src, dst)
	if err != nil {
		return 0, err
	}
	links, err := t.PathLinks(path)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for _, l := range links {
		total += l.LatencyOneWay
	}
	return total, nil
}
