package mesh

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrPartitionRange reports a region count outside [1, node count]. Callers
// that expose a shard-count knob (cmd/benchtab's -shards) match on it to turn
// the failure into a usage error.
var ErrPartitionRange = errors.New("mesh: partition count out of range")

// Partition is a deterministic k-way division of a topology's nodes into
// contiguous regions, the unit of parallelism for the sharded network
// simulator. Regions are grown by balanced multi-source BFS from seed-chosen
// centers, so equal (topology, k, seed) triples always produce identical
// region assignments — the property the sharded driver's byte-identity
// contract rests on.
//
// Links whose endpoints fall in different regions are gateway links: the
// sharded allocator treats the far endpoint of a flow crossing one as a
// virtual source/sink of the neighbouring region and reconciles the shared
// allocation in its fixed-point round loop.
type Partition struct {
	k        int
	regionOf map[string]int
	sizes    []int
	gateways []LinkID
}

// PartitionTopology divides the topology's nodes into k regions, keyed by
// seed. The first center is drawn from the seeded source; subsequent centers
// are chosen farthest-first (maximum hop distance from every chosen center,
// lexicographic tie-break), then regions grow by balanced multi-source BFS:
// regions claim frontier nodes in rotation, smallest name first, so region
// sizes stay within one node of each other on connected graphs. Nodes
// unreachable from any center (disconnected components) are appended to the
// smallest region in name order.
//
// k must be between 1 and the node count.
func PartitionTopology(t *Topology, k int, seed int64) (*Partition, error) {
	names := t.Nodes()
	sort.Strings(names)
	if k < 1 || k > len(names) {
		return nil, fmt.Errorf("%w: %d not in [1, %d]", ErrPartitionRange, k, len(names))
	}
	p := &Partition{
		k:        k,
		regionOf: make(map[string]int, len(names)),
		sizes:    make([]int, k),
	}
	centers := chooseCenters(t, names, k, seed)
	// Balanced multi-source BFS: each region holds a frontier queue; regions
	// take turns claiming one unclaimed node per rotation. Frontier
	// neighbours enqueue in sorted order (adjacency lists are sorted), so
	// the whole growth is deterministic.
	frontiers := make([][]string, k)
	for r, c := range centers {
		p.assign(c, r)
		frontiers[r] = append(frontiers[r], c)
	}
	for claimed := k; claimed < len(names); {
		grew := false
		for r := 0; r < k; r++ {
			// Pop until this region claims one node or exhausts its frontier.
			for len(frontiers[r]) > 0 {
				cur := frontiers[r][0]
				next := ""
				for _, nb := range t.adj[cur] {
					if _, seen := p.regionOf[nb]; !seen {
						next = nb
						break
					}
				}
				if next == "" {
					frontiers[r] = frontiers[r][1:]
					continue
				}
				p.assign(next, r)
				frontiers[r] = append(frontiers[r], next)
				claimed++
				grew = true
				break
			}
		}
		if !grew {
			break // every frontier exhausted: the rest is disconnected
		}
	}
	// Disconnected leftovers: smallest region first, name order.
	for _, n := range names {
		if _, ok := p.regionOf[n]; ok {
			continue
		}
		r := 0
		for i := 1; i < k; i++ {
			if p.sizes[i] < p.sizes[r] {
				r = i
			}
		}
		p.assign(n, r)
	}
	for _, l := range t.Links() {
		if p.regionOf[l.ID.A] != p.regionOf[l.ID.B] {
			p.gateways = append(p.gateways, l.ID)
		}
	}
	return p, nil
}

// chooseCenters picks k region centers: the first from the seeded source,
// the rest farthest-first by hop distance (ties broken lexicographically by
// walking names in sorted order with a strict improvement test).
func chooseCenters(t *Topology, names []string, k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	centers := []string{names[rng.Intn(len(names))]}
	dist := map[string]int{}
	for len(centers) < k {
		bfsDistances(t, centers[len(centers)-1], dist)
		best, bestD := "", -1
		for _, n := range names {
			if _, taken := dist[n]; !taken {
				continue // unreachable: left for the leftover pass
			}
			if d := dist[n]; d > bestD {
				best, bestD = n, d
			}
		}
		if best == "" || bestD == 0 {
			// Fewer reachable nodes than regions: fall back to the next
			// unchosen name so every region still gets a distinct center.
			for _, n := range names {
				if !contains(centers, n) {
					best = n
					break
				}
			}
		}
		centers = append(centers, best)
	}
	return centers
}

// bfsDistances folds src's hop distances into dist as min(existing, new) —
// accumulating min-distance-to-any-center across calls. Entries start at the
// first call; unreachable nodes never appear.
func bfsDistances(t *Topology, src string, dist map[string]int) {
	type qe struct {
		n string
		d int
	}
	queue := []qe{{src, 0}}
	seen := map[string]bool{src: true}
	if d, ok := dist[src]; !ok || d > 0 {
		dist[src] = 0
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range t.adj[cur.n] {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			if d, ok := dist[nb]; !ok || cur.d+1 < d {
				dist[nb] = cur.d + 1
			}
			queue = append(queue, qe{nb, cur.d + 1})
		}
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (p *Partition) assign(node string, region int) {
	p.regionOf[node] = region
	p.sizes[region]++
}

// K reports the number of regions.
func (p *Partition) K() int { return p.k }

// Region reports the region index of a node (-1 for unknown nodes).
func (p *Partition) Region(node string) int {
	r, ok := p.regionOf[node]
	if !ok {
		return -1
	}
	return r
}

// Sizes reports the node count of each region.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.sizes))
	copy(out, p.sizes)
	return out
}

// Gateways returns the cross-region links, sorted by ID — the boundary the
// sharded allocator reconciles across.
func (p *Partition) Gateways() []LinkID {
	out := make([]LinkID, len(p.gateways))
	copy(out, p.gateways)
	return out
}
