package mesh

import (
	"time"

	"bass/internal/trace"
)

// CityLab node names. Node0 hosts the control plane (k3s server + BASS
// extensions); nodes 1-4 are workers, matching the paper's 5-node subset of
// the CityLab topology (Fig 15a).
const (
	CityLabControl = "node0"
	CityLabNode1   = "node1"
	CityLabNode2   = "node2"
	CityLabNode3   = "node3"
	CityLabNode4   = "node4"
)

// CityLabLinkSpec describes one link of the emulated CityLab subset. The
// paper's Fig 15(a) shows measured half-hour average bandwidths but does not
// tabulate them; these values are chosen to be consistent with every number
// the text does give: the node3-node4 link is 25 Mbps (Fig 8), links carry
// roughly 8-25 Mbps (Fig 2 characterises links of ~19.9 and ~7.62 Mbps), and
// node2's connectivity is the weakest (its participants see 240 Kbps video in
// Fig 15b).
type CityLabLinkSpec struct {
	A, B      string
	MeanMbps  float64
	StdFrac   float64
	LatencyMS float64
	// DipsPerHour is the shadowing-episode rate; the control node's uplink
	// is sited with the gateway and rarely shadows.
	DipsPerHour float64
}

// CityLabLinks returns the link specs of the emulated 5-node subset.
func CityLabLinks() []CityLabLinkSpec {
	return []CityLabLinkSpec{
		{A: CityLabControl, B: CityLabNode1, MeanMbps: 50, StdFrac: 0.05, LatencyMS: 2, DipsPerHour: 0.2},
		{A: CityLabNode1, B: CityLabNode2, MeanMbps: 12, StdFrac: 0.22, LatencyMS: 4, DipsPerHour: 5},
		{A: CityLabNode1, B: CityLabNode3, MeanMbps: 19.9, StdFrac: 0.10, LatencyMS: 3, DipsPerHour: 4},
		{A: CityLabNode1, B: CityLabNode4, MeanMbps: 14, StdFrac: 0.15, LatencyMS: 4, DipsPerHour: 4},
		{A: CityLabNode2, B: CityLabNode3, MeanMbps: 7.62, StdFrac: 0.27, LatencyMS: 5, DipsPerHour: 6},
		{A: CityLabNode3, B: CityLabNode4, MeanMbps: 25, StdFrac: 0.12, LatencyMS: 3, DipsPerHour: 4},
	}
}

// CityLabOptions tunes CityLab topology construction.
type CityLabOptions struct {
	// Seed seeds the per-link trace generators (link index is mixed in).
	Seed int64
	// Duration is the trace length (default 20 min, the paper's run length).
	Duration time.Duration
	// Static disables bandwidth variation: each link is pinned to the
	// maximum value observed in its generated trace, matching the paper's
	// "no bandwidth variation" baseline for Table 2.
	Static bool
}

// CityLab builds the emulated 5-node CityLab subset with trace-driven link
// capacities.
func CityLab(opts CityLabOptions) (*Topology, error) {
	if opts.Duration == 0 {
		opts.Duration = 20 * time.Minute
	}
	t := NewTopology()
	for _, n := range []string{CityLabControl, CityLabNode1, CityLabNode2, CityLabNode3, CityLabNode4} {
		t.AddNode(n)
	}
	for i, spec := range CityLabLinks() {
		cfg := trace.GenConfig{
			MeanMbps:       spec.MeanMbps,
			StdFrac:        spec.StdFrac,
			Theta:          0.05,
			DipRatePerHour: spec.DipsPerHour,
			DipDepth:       0.4,
			// The paper observes that fluctuations needing migration happen
			// "in the order of minutes" (§6.3.4): shadowing episodes last
			// minutes, not seconds.
			DipMeanDuration: 3 * time.Minute,
			Duration:        opts.Duration,
			Seed:            opts.Seed + int64(i)*7919,
		}
		tr, err := trace.Generate(MakeLinkID(spec.A, spec.B).String(), cfg)
		if err != nil {
			return nil, err
		}
		if opts.Static {
			tr = trace.Constant(tr.Name, tr.Step, tr.Max(), tr.Len())
		}
		latency := time.Duration(spec.LatencyMS * float64(time.Millisecond))
		if err := t.AddLink(spec.A, spec.B, tr, latency); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustCityLab is CityLab that panics on error, for tests and examples.
func MustCityLab(opts CityLabOptions) *Topology {
	t, err := CityLab(opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Line builds a simple chain topology n0-n1-...-n(k-1) with constant-capacity
// links, handy for unit tests and the 3-node microbenchmark setups (Fig 3).
func Line(names []string, mbps float64, latency time.Duration, dur time.Duration) *Topology {
	t := NewTopology()
	for _, n := range names {
		t.AddNode(n)
	}
	n := int(dur / time.Second)
	if n < 1 {
		n = 1
	}
	for i := 0; i+1 < len(names); i++ {
		id := MakeLinkID(names[i], names[i+1])
		t.MustAddLink(names[i], names[i+1], trace.Constant(id.String(), time.Second, mbps, n), latency)
	}
	return t
}

// FullMesh builds a complete graph over names with constant-capacity links,
// matching the paper's microbenchmark clusters on a bridged LAN (§6.2.1).
func FullMesh(names []string, mbps float64, latency time.Duration, dur time.Duration) *Topology {
	t := NewTopology()
	for _, n := range names {
		t.AddNode(n)
	}
	n := int(dur / time.Second)
	if n < 1 {
		n = 1
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			id := MakeLinkID(names[i], names[j])
			t.MustAddLink(names[i], names[j], trace.Constant(id.String(), time.Second, mbps, n), latency)
		}
	}
	return t
}
