package mesh

import (
	"reflect"
	"testing"
	"time"

	"bass/internal/trace"
)

func lineABC(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, n := range []string{"a", "b", "c"} {
		topo.AddNode(n)
	}
	tr := trace.Constant("l", time.Second, 10, 60)
	topo.MustAddLink("a", "b", tr, time.Millisecond)
	topo.MustAddLink("b", "c", tr, time.Millisecond)
	return topo
}

func TestRouteCacheInvalidatedByAvailability(t *testing.T) {
	topo := lineABC(t)
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []string{"a", "b", "c"}) {
		t.Fatalf("path = %v", path)
	}
	epoch := topo.AvailabilityEpoch()
	// Cached query must not bump the epoch.
	if _, err := topo.Route("a", "c"); err != nil {
		t.Fatal(err)
	}
	if topo.AvailabilityEpoch() != epoch {
		t.Error("read-only Route advanced the epoch")
	}
	if err := topo.SetNodeUp("b", false); err != nil {
		t.Fatal(err)
	}
	if topo.AvailabilityEpoch() == epoch {
		t.Error("node-down did not advance the epoch")
	}
	if _, err := topo.Route("a", "c"); err == nil {
		t.Fatal("route through down node served from stale cache")
	}
	if err := topo.SetNodeUp("b", true); err != nil {
		t.Fatal(err)
	}
	path, err = topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []string{"a", "b", "c"}) {
		t.Fatalf("path after recovery = %v", path)
	}
}

func TestRouteCacheInvalidatedByAddLink(t *testing.T) {
	topo := lineABC(t)
	if _, err := topo.Route("a", "c"); err != nil {
		t.Fatal(err)
	}
	before := len(topo.Links())
	topo.MustAddLink("a", "c", trace.Constant("ac", time.Second, 10, 60), time.Millisecond)
	if got := len(topo.Links()); got != before+1 {
		t.Fatalf("Links() cache stale after AddLink: %d links, want %d", got, before+1)
	}
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path after shortcut link = %v, want direct", path)
	}
}

func TestNoTransitionKeepsEpoch(t *testing.T) {
	topo := lineABC(t)
	epoch := topo.AvailabilityEpoch()
	if err := topo.SetNodeUp("a", true); err != nil { // already up
		t.Fatal(err)
	}
	if err := topo.SetLinkUp("a", "b", true); err != nil { // already up
		t.Fatal(err)
	}
	if topo.AvailabilityEpoch() != epoch {
		t.Error("no-op availability writes advanced the epoch")
	}
}

func TestOnCapacityChangeNotifies(t *testing.T) {
	topo := lineABC(t)
	var got []LinkID
	topo.OnCapacityChange(func(id LinkID) { got = append(got, id) })
	if err := topo.SetCapacity("a", "b", trace.Constant("x", time.Second, 5, 60)); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetDirectedCapacity("b", "c", trace.Constant("y", time.Second, 5, 60)); err != nil {
		t.Fatal(err)
	}
	if err := topo.ThrottleEgress("b", trace.Constant("z", time.Second, 2, 60)); err != nil {
		t.Fatal(err)
	}
	want := []LinkID{MakeLinkID("a", "b"), MakeLinkID("b", "c"),
		MakeLinkID("a", "b"), MakeLinkID("b", "c")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("notifications = %v, want %v", got, want)
	}
	// Failed swaps must not notify.
	before := len(got)
	if err := topo.SetDirectedCapacity("a", "ghost", nil); err == nil {
		t.Fatal("want error")
	}
	if len(got) != before {
		t.Error("failed swap notified listeners")
	}
}

func TestRouteScratchReuseKeepsPathsIndependent(t *testing.T) {
	topo := lineABC(t)
	p1, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := topo.Route("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, []string{"a", "b", "c"}) || !reflect.DeepEqual(p2, []string{"c", "b", "a"}) {
		t.Fatalf("paths = %v, %v", p1, p2)
	}
}
