package core

import (
	"fmt"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
	"bass/internal/sim"
	"bass/internal/simnet"
)

// Simulation bundles an engine, topology, network, cluster, and orchestrator
// into one runnable experiment, the way a CloudLab cluster bundles VMs, tc
// rules, and the k3s control plane in the paper's evaluation.
type Simulation struct {
	Eng     *sim.Engine
	Topo    *mesh.Topology
	Net     *simnet.Network
	Cluster *cluster.Cluster
	Orch    *Orchestrator

	stopNet func()
}

// NewSimulation wires a simulation. Every node in nodes must exist in the
// topology. The network's capacity ticks and the orchestrator's startup
// probing round are armed; run with Run.
func NewSimulation(topo *mesh.Topology, nodes []cluster.Node, seed int64, cfg Config) (*Simulation, error) {
	for _, n := range nodes {
		if !topo.HasNode(n.Name) {
			return nil, fmt.Errorf("core: cluster node %q not in topology", n.Name)
		}
	}
	clus, err := cluster.New(nodes...)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	net := simnet.New(eng, topo)
	if cfg.PollingNet {
		net.SetPolling(true)
	}
	if cfg.Shards > 1 {
		if err := net.SetShards(cfg.Shards); err != nil {
			return nil, err
		}
	}
	orch := New(eng, topo, net, clus, cfg)
	s := &Simulation{
		Eng:     eng,
		Topo:    topo,
		Net:     net,
		Cluster: clus,
		Orch:    orch,
	}
	s.stopNet = net.Start()
	if err := orch.Bootstrap(); err != nil {
		return nil, err
	}
	return s, nil
}

// Run advances virtual time to the horizon.
func (s *Simulation) Run(until time.Duration) error {
	return s.Eng.Run(until)
}

// AttachObservability wires a decision journal and metric store into the
// orchestration stack (see Orchestrator.AttachObservability). Attach before
// Run so the journal covers the whole horizon; the startup probing round has
// already happened by the time NewSimulation returns, so journals begin with
// the first monitoring sweep.
func (s *Simulation) AttachObservability(journal *obs.Journal, store *metricstore.Store) *obs.Plane {
	return s.Orch.AttachObservability(journal, store)
}

// InjectFaults validates a fault schedule against the topology and arms its
// events on the engine, with the simulation itself as the fault target.
func (s *Simulation) InjectFaults(sched *faults.Schedule) (*faults.Injector, error) {
	if err := sched.Validate(s.Topo); err != nil {
		return nil, err
	}
	return faults.Inject(s.Eng, sched, s), nil
}

// The Simulation is the faults.Target: events flip availability in the
// topology, then ApplyTopologyState propagates the change to the data plane
// (zeroed capacities, rerouted flows, parked streams, failed transfers).
// Detection and failover happen through the regular monitoring path — the
// orchestrator learns of a crash the way a real control plane does, from
// probes failing, never from the injector telling it.

// applyFault journals the injected fault and propagates the availability
// change to the data plane under its cause span, so the flow disruptions the
// reroute produces (parked streams, failed transfers) cite the fault that
// caused them.
func (s *Simulation) applyFault(ev obs.Event) {
	span := s.Orch.plane.EmitSpan(ev)
	s.Net.SetCause(span)
	s.Net.ApplyTopologyState()
	s.Net.SetCause(0)
}

// NodeDown implements faults.Target.
func (s *Simulation) NodeDown(name string) {
	if err := s.Topo.SetNodeUp(name, false); err != nil {
		return
	}
	s.applyFault(obs.Event{Type: obs.EventFault, Node: name, Reason: "node_down"})
}

// NodeUp implements faults.Target.
func (s *Simulation) NodeUp(name string) {
	if err := s.Topo.SetNodeUp(name, true); err != nil {
		return
	}
	s.applyFault(obs.Event{Type: obs.EventFault, Node: name, Reason: "node_up"})
}

// LinkDown implements faults.Target.
func (s *Simulation) LinkDown(id mesh.LinkID) {
	if err := s.Topo.SetLinkUp(id.A, id.B, false); err != nil {
		return
	}
	s.applyFault(obs.Event{Type: obs.EventFault, Link: id.String(), Reason: "link_down"})
}

// LinkUp implements faults.Target.
func (s *Simulation) LinkUp(id mesh.LinkID) {
	if err := s.Topo.SetLinkUp(id.A, id.B, true); err != nil {
		return
	}
	s.applyFault(obs.Event{Type: obs.EventFault, Link: id.String(), Reason: "link_up"})
}

// SetProbeLoss implements faults.Target.
func (s *Simulation) SetProbeLoss(id mesh.LinkID, lossy bool) {
	s.Net.SetProbeLoss(id, lossy)
}

// Close stops periodic activity (network ticks, controller loop).
func (s *Simulation) Close() {
	s.Orch.Stop()
	if s.stopNet != nil {
		s.stopNet()
		s.stopNet = nil
	}
}
