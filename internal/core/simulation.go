package core

import (
	"fmt"
	"time"

	"bass/internal/cluster"
	"bass/internal/mesh"
	"bass/internal/sim"
	"bass/internal/simnet"
)

// Simulation bundles an engine, topology, network, cluster, and orchestrator
// into one runnable experiment, the way a CloudLab cluster bundles VMs, tc
// rules, and the k3s control plane in the paper's evaluation.
type Simulation struct {
	Eng     *sim.Engine
	Topo    *mesh.Topology
	Net     *simnet.Network
	Cluster *cluster.Cluster
	Orch    *Orchestrator

	stopNet func()
}

// NewSimulation wires a simulation. Every node in nodes must exist in the
// topology. The network's capacity ticks and the orchestrator's startup
// probing round are armed; run with Run.
func NewSimulation(topo *mesh.Topology, nodes []cluster.Node, seed int64, cfg Config) (*Simulation, error) {
	for _, n := range nodes {
		if !topo.HasNode(n.Name) {
			return nil, fmt.Errorf("core: cluster node %q not in topology", n.Name)
		}
	}
	clus, err := cluster.New(nodes...)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	net := simnet.New(eng, topo)
	orch := New(eng, topo, net, clus, cfg)
	s := &Simulation{
		Eng:     eng,
		Topo:    topo,
		Net:     net,
		Cluster: clus,
		Orch:    orch,
	}
	s.stopNet = net.Start()
	if err := orch.Bootstrap(); err != nil {
		return nil, err
	}
	return s, nil
}

// Run advances virtual time to the horizon.
func (s *Simulation) Run(until time.Duration) error {
	return s.Eng.Run(until)
}

// Close stops periodic activity (network ticks, controller loop).
func (s *Simulation) Close() {
	s.Orch.Stop()
	if s.stopNet != nil {
		s.stopNet()
		s.stopNet = nil
	}
}
