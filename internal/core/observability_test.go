package core

import (
	"bytes"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/metricstore"
	"bass/internal/obs"
)

// obsCrashRun executes the node-crash scenario with observability attached
// and returns the journal bytes and the metric store.
func obsCrashRun(t *testing.T) ([]byte, *metricstore.Store) {
	t.Helper()
	nodes := fourNodes()
	nodes[0].CPU = 3
	s := chaosSim(t, nodes, Config{})
	defer s.Close()
	journal := obs.NewJournal(0)
	store := metricstore.New(0)
	s.AttachObservability(journal, store)
	w := newPairWorkload("pair", 8, "n1", 2)
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: assignment["dst"]},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := journal.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), store
}

// TestObservabilityJournalsFailureHandling drives a crash through the regular
// monitoring path and checks the journal tells the whole story: failing
// probes, the down verdict, cordon, evacuation, and the failover, plus the
// metric series the same components emitted.
func TestObservabilityJournalsFailureHandling(t *testing.T) {
	raw, store := obsCrashRun(t)
	journal := string(raw)
	for _, want := range []obs.EventType{
		obs.EventProbeHeadroom, obs.EventProbeError, obs.EventNodeDown,
		obs.EventCordon, obs.EventEvacuate, obs.EventFailover,
	} {
		if !bytes.Contains(raw, []byte(`"type":"`+string(want)+`"`)) {
			t.Errorf("journal missing %q events:\n%s", want, journal)
		}
	}
	for _, metric := range []string{obs.MetricLinkHeadroom, obs.MetricDepGoodput, obs.MetricFailoverMTTR} {
		if _, ok := store.Latest(metric, nil); !ok {
			t.Errorf("store missing %s samples; metrics: %v", metric, store.Metrics())
		}
	}
}

// TestObservabilityJournalIsDeterministic pins the plane's headline
// guarantee: the same seed yields a byte-identical JSONL journal.
func TestObservabilityJournalIsDeterministic(t *testing.T) {
	run1, store1 := obsCrashRun(t)
	run2, store2 := obsCrashRun(t)
	if !bytes.Equal(run1, run2) {
		t.Errorf("same-seed journals differ:\n--- 1 ---\n%s--- 2 ---\n%s", run1, run2)
	}
	var dump1, dump2 bytes.Buffer
	if err := store1.WritePrometheus(&dump1); err != nil {
		t.Fatal(err)
	}
	if err := store2.WritePrometheus(&dump2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump1.Bytes(), dump2.Bytes()) {
		t.Errorf("same-seed metric dumps differ:\n--- 1 ---\n%s--- 2 ---\n%s",
			dump1.String(), dump2.String())
	}
}

// TestObservabilityForcedMigrationJournaled checks scripted migrations are
// journaled with a reason and bump migrations_total.
func TestObservabilityForcedMigrationJournaled(t *testing.T) {
	s := chaosSim(t, fourNodes(), Config{})
	defer s.Close()
	journal := obs.NewJournal(0)
	store := metricstore.New(0)
	s.AttachObservability(journal, store)
	if got := s.Orch.Observability(); got == nil || got.Journal() != journal {
		t.Fatal("Observability() does not expose the attached plane")
	}
	w := newPairWorkload("pair", 4, "n1", 1)
	if _, err := s.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	target := "n3"
	if got := s.Cluster.NodeOf("pair", "dst"); got == target {
		target = "n4"
	}
	if err := s.Orch.ForceMigrate("pair", "dst", target); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range journal.Events() {
		if ev.Type == obs.EventMigration && ev.Component == "dst" && ev.To == target && ev.Reason != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no migration event for dst->%s in journal: %+v", target, journal.Events())
	}
	if sample, ok := store.Latest(obs.MetricMigrations, nil); !ok || sample.Value != 1 {
		t.Errorf("migrations_total = %+v ok=%v, want 1", sample, ok)
	}
}

// TestUnattachedOrchestratorRecordsNothing checks the default path stays
// dark: no plane, no panic, no events.
func TestUnattachedOrchestratorRecordsNothing(t *testing.T) {
	nodes := []cluster.Node{
		{Name: "n1", CPU: 4, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
	}
	s := chaosSim(t, nodes, Config{})
	defer s.Close()
	if s.Orch.Observability() != nil {
		t.Fatal("fresh orchestrator has a plane attached")
	}
	w := newPairWorkload("pair", 4, "n1", 1)
	if _, err := s.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
}
