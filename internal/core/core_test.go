package core

import (
	"errors"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/dag"
	"bass/internal/mesh"
	"bass/internal/scheduler"
	"bass/internal/simnet"
	"bass/internal/trace"
)

// pairWorkload is a minimal two-component workload: src streams to dst at
// the edge's bandwidth requirement. It re-attaches its stream after
// migrations, like the paper's Fig 8 component pair.
type pairWorkload struct {
	graph  *dag.Graph
	demand float64

	env          *Env
	stream       simnet.FlowID
	attached     bool
	lastDowntime time.Duration
}

func newPairWorkload(app string, demand float64, pinSrc string, cpu float64) *pairWorkload {
	g := dag.NewGraph(app)
	src := dag.Component{Name: "src", CPU: cpu}
	if pinSrc != "" {
		src.Labels = dag.Pin(pinSrc)
	}
	g.MustAddComponent(src)
	g.MustAddComponent(dag.Component{Name: "dst", CPU: cpu})
	g.MustAddEdge("src", "dst", demand)
	return &pairWorkload{graph: g, demand: demand}
}

func (w *pairWorkload) Graph() *dag.Graph { return w.graph }

func (w *pairWorkload) Start(env *Env) error {
	w.env = env
	return w.attach()
}

func (w *pairWorkload) attach() error {
	if w.attached {
		if err := w.env.Net().RemoveStream(w.stream); err != nil {
			return err
		}
		w.attached = false
	}
	id, err := w.env.Net().AddStream(w.env.Tag("src", "dst"), w.env.NodeOf("src"), w.env.NodeOf("dst"), w.demand)
	if err != nil {
		return err
	}
	w.stream, w.attached = id, true
	return nil
}

func (w *pairWorkload) OnMigration(env *Env, component, fromNode, toNode string, downtime time.Duration) {
	w.lastDowntime = downtime
	if w.attached {
		_ = env.Net().RemoveStream(w.stream)
		w.attached = false
	}
	env.Engine().After(downtime, func() { _ = w.attach() })
}

var _ Workload = (*pairWorkload)(nil)

// fig8Topology builds the three-worker subset of Fig 8's scenario: the pair
// starts on node3/node4 (25 Mbps link); the link later degrades to 7 Mbps.
func fig8Topology(dropAt time.Duration) *mesh.Topology {
	topo := mesh.NewTopology()
	for _, n := range []string{"node1", "node3", "node4"} {
		topo.AddNode(n)
	}
	hour := time.Hour
	n3n4 := trace.StepTrace("node3-node4", time.Second, hour, []trace.Level{
		{From: 0, Mbps: 25},
		{From: dropAt, Mbps: 7},
	})
	topo.MustAddLink("node3", "node4", n3n4, 3*time.Millisecond)
	topo.MustAddLink("node1", "node3", trace.Constant("node1-node3", time.Second, 20, 3600), 3*time.Millisecond)
	topo.MustAddLink("node1", "node4", trace.Constant("node1-node4", time.Second, 20, 3600), 3*time.Millisecond)
	return topo
}

func fig8Nodes() []cluster.Node {
	return []cluster.Node{
		// node3 can host only the pinned src (CPU 3 < 2+2).
		{Name: "node3", CPU: 3, MemoryMB: 4096},
		// node4 outranks node1 on link capacity (45 vs 40 Mbps combined), so
		// dst initially lands there.
		{Name: "node4", CPU: 8, MemoryMB: 8192},
		{Name: "node1", CPU: 8, MemoryMB: 8192},
	}
}

func TestDeployPlacesPairAcrossLink(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy: scheduler.NewBass(scheduler.HeuristicBFS),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "node3", 2)
	assignment, err := sim.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	if assignment["src"] != "node3" {
		t.Errorf("src on %q, want pinned node3", assignment["src"])
	}
	if assignment["dst"] != "node4" {
		t.Errorf("dst on %q, want node4 (highest-ranked with space)", assignment["dst"])
	}
}

func TestDeployDuplicateApp(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "", 1)
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	w2 := newPairWorkload("pair", 8, "", 1)
	if _, err := sim.Orch.Deploy("pair", w2); !errors.Is(err, ErrAppExists) {
		t.Errorf("want ErrAppExists, got %v", err)
	}
}

func TestDeployNameMismatch(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "", 1)
	if _, err := sim.Orch.Deploy("other-name", w); err == nil {
		t.Error("want error on app-name mismatch")
	}
}

// TestFig8MigrationTimeline reproduces the paper's Fig 8: the node3-node4
// link degrades at t=540 s; the controller notices the headroom drop,
// refreshes the capacity estimate with a full probe, and migrates the pair's
// movable component from node4 to node1, restoring goodput.
func TestFig8MigrationTimeline(t *testing.T) {
	const dropAt = 540 * time.Second
	topo := fig8Topology(dropAt)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy:            scheduler.NewBass(scheduler.HeuristicBFS),
		EnableMigration:   true,
		MonitorInterval:   30 * time.Second,
		MigrationDowntime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	w := newPairWorkload("pair", 8, "node3", 2)
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}

	// Before the drop: no migrations, goodput at demand.
	if err := sim.Run(dropAt - time.Second); err != nil {
		t.Fatal(err)
	}
	if n := len(sim.Orch.Migrations()); n != 0 {
		t.Fatalf("migrated %d times before any degradation", n)
	}
	rate, err := sim.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8 {
		t.Errorf("pre-drop rate = %v, want 8", rate)
	}

	// Run past the drop + probing interval + cooldown.
	if err := sim.Run(dropAt + 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	migs := sim.Orch.Migrations()
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v, want exactly one", migs)
	}
	m := migs[0]
	if m.Component != "dst" || m.From != "node4" || m.To != "node1" {
		t.Errorf("migration = %+v, want dst node4→node1", m)
	}
	if m.At < dropAt {
		t.Errorf("migration at %v precedes the capacity drop", m.At)
	}

	// After reconnect: goodput restored over node1-node3.
	if err := sim.Run(dropAt + 4*time.Minute); err != nil {
		t.Fatal(err)
	}
	rate, err = sim.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8 {
		t.Errorf("post-migration rate = %v, want restored 8", rate)
	}
	if got := sim.Cluster.NodeOf("pair", "dst"); got != "node1" {
		t.Errorf("dst on %q after migration", got)
	}
}

func TestMigrationDisabledStaysPut(t *testing.T) {
	const dropAt = 60 * time.Second
	topo := fig8Topology(dropAt)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy:          scheduler.NewBass(scheduler.HeuristicBFS),
		EnableMigration: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "node3", 2)
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := len(sim.Orch.Migrations()); n != 0 {
		t.Errorf("migrations = %d with controller disabled", n)
	}
	rate, err := sim.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 7.01 {
		t.Errorf("rate = %v on a 7 Mbps link without migration", rate)
	}
}

func TestForceMigrate(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{MigrationDowntime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "node3", 2)
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Orch.ForceMigrate("pair", "dst", "node1"); err != nil {
		t.Fatal(err)
	}
	if got := sim.Cluster.NodeOf("pair", "dst"); got != "node1" {
		t.Errorf("dst on %q", got)
	}
	if err := sim.Orch.ForceMigrate("ghost", "dst", "node1"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("want ErrUnknownApp, got %v", err)
	}
}

func TestSchedulingLatencyRecorded(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 8, "", 1)
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Orch.SchedulingLatenciesNS()); got != 2 {
		t.Errorf("per-component latencies = %d, want 2", got)
	}
	if got := len(sim.Orch.DAGProcessingNS()); got != 1 {
		t.Errorf("DAG processing samples = %d, want 1", got)
	}
}

func TestNewSimulationRejectsForeignNode(t *testing.T) {
	topo := fig8Topology(time.Hour)
	_, err := NewSimulation(topo, []cluster.Node{{Name: "mars", CPU: 1}}, 1, Config{})
	if err == nil {
		t.Error("want error for node outside topology")
	}
}
