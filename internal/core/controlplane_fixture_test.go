package core

import (
	"fmt"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/dag"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
	"bass/internal/simnet"
	"bass/internal/trace"
)

// Shared fixture for the control-plane benchmarks and differential tests.
// The BenchmarkControlPlane family measures one controller epoch — probe
// sweep, per-app evaluation through the path oracle, candidate selection —
// at town (64 nodes) and city (196 nodes) meshes across 1×/10×/100× app
// density, quiet and storm. Cycles are driven directly (no data-plane time
// passes between iterations), so the numbers isolate control-plane cost; the
// committed BENCH_sched.json carries the end-to-end runs, migrations
// included. Excluded from -race runs: AllocsPerRun and timing are both
// meaningless under the race detector.

// benchChain is the benchmark workload: src→mid→dst with pinned endpoints so
// both edges cross the mesh (unique component names per app — the controller
// keys cooldown clocks by component name).
type benchChain struct {
	graph *dag.Graph
	comps [3]string

	demand  float64
	env     *Env
	streams [2]simnet.FlowID
	live    [2]bool
}

var _ Workload = (*benchChain)(nil)

func newBenchChain(app string, demand float64, pinSrc, pinDst string) *benchChain {
	g := dag.NewGraph(app)
	c := &benchChain{graph: g, demand: demand}
	c.comps = [3]string{"src-" + app, "mid-" + app, "dst-" + app}
	g.MustAddComponent(dag.Component{Name: c.comps[0], CPU: 0.1, Labels: dag.Pin(pinSrc)})
	g.MustAddComponent(dag.Component{Name: c.comps[1], CPU: 0.1})
	g.MustAddComponent(dag.Component{Name: c.comps[2], CPU: 0.1, Labels: dag.Pin(pinDst)})
	g.MustAddEdge(c.comps[0], c.comps[1], demand)
	g.MustAddEdge(c.comps[1], c.comps[2], demand)
	return c
}

func (c *benchChain) Graph() *dag.Graph { return c.graph }

func (c *benchChain) edge(i int) (string, string) {
	if i == 0 {
		return c.comps[0], c.comps[1]
	}
	return c.comps[1], c.comps[2]
}

func (c *benchChain) Start(env *Env) error {
	c.env = env
	for i := 0; i < 2; i++ {
		from, to := c.edge(i)
		id, err := env.Net().AddStream(env.Tag(from, to), env.NodeOf(from), env.NodeOf(to), c.demand)
		if err == nil {
			c.streams[i], c.live[i] = id, true
		}
	}
	return nil
}

func (c *benchChain) OnMigration(env *Env, component, fromNode, toNode string, downtime time.Duration) {
	for i := 0; i < 2; i++ {
		from, to := c.edge(i)
		if component != from && component != to {
			continue
		}
		if c.live[i] {
			_ = env.Net().RemoveStream(c.streams[i])
			c.live[i] = false
		}
	}
}

// staticGrid builds a rows×cols mesh with constant-capacity links: after the
// first probe sweep nothing changes, so direct-driven cycles settle into the
// steady state the quiet benchmarks measure.
func staticGrid(rows, cols int, mbps float64) *mesh.Topology {
	topo := mesh.NewTopology()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			topo.AddNode(mesh.GridNodeName(r, c))
		}
	}
	link := func(a, b string) {
		tr := trace.Constant(mesh.MakeLinkID(a, b).String(), time.Second, mbps, 24*3600)
		topo.MustAddLink(a, b, tr, 3*time.Millisecond)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				link(mesh.GridNodeName(r, c), mesh.GridNodeName(r, c+1))
			}
			if r+1 < rows {
				link(mesh.GridNodeName(r, c), mesh.GridNodeName(r+1, c))
			}
		}
	}
	return topo
}

// setupControlPlane deploys apps chain applications over a static grid and
// settles the first epochs, returning the simulation ready for direct
// controlCycle driving.
func setupControlPlane(tb testing.TB, rows, cols, apps int, storm bool, workers int) *Simulation {
	return setupControlPlaneObserved(tb, rows, cols, apps, storm, workers, false)
}

// setupControlPlaneObserved is setupControlPlane with an optional
// observability plane and SLO evaluator attached — the with-dashboards side
// of the quiet-epoch allocation contract. The journal is a bounded ring and
// the store's rings are sized small, so steady state overwrites instead of
// growing.
func setupControlPlaneObserved(tb testing.TB, rows, cols, apps int, storm bool, workers int, observed bool) *Simulation {
	tb.Helper()
	topo := staticGrid(rows, cols, 25)
	n := rows * cols
	cpu := float64(3*apps) * 0.1 / float64(n) * 1.5
	if cpu < 2 {
		cpu = 2
	}
	nodes := make([]cluster.Node, 0, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nodes = append(nodes, cluster.Node{Name: mesh.GridNodeName(r, c), CPU: cpu, MemoryMB: 16384})
		}
	}
	s, err := NewSimulation(topo, nodes, 42, Config{
		EnableMigration: true,
		MonitorInterval: 30 * time.Second,
		EvalWorkers:     workers,
		EnableSLO:       observed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if observed {
		s.AttachObservability(obs.NewJournal(4096), metricstore.NewWithConfig(metricstore.Config{
			MaxSamples: 256, Rollup10s: 64, Rollup5m: 16,
		}))
	}
	demand := 0.5
	if storm {
		demand = 12
	}
	// Deterministic endpoint spread: stride coprime to the cell count walks
	// every cell, so pins stay uniform at 100× density; dst sits a couple of
	// grid steps away so every chain crosses links and storms contend.
	stride := 5
	for n%stride == 0 {
		stride += 2
	}
	for i := 0; i < apps; i++ {
		cell := (i * stride) % n
		sr, sc := cell/cols, cell%cols
		dr, dc := (sr+2)%rows, (sc+1)%cols
		name := fmt.Sprintf("chain-%04d", i)
		w := newBenchChain(name, demand, mesh.GridNodeName(sr, sc), mesh.GridNodeName(dr, dc))
		if _, err := s.Orch.Deploy(name, w); err != nil {
			s.Close()
			tb.Fatal(err)
		}
	}
	// Two settle cycles: the first probe sweep seeds spare estimates (every
	// link reads as changed), the second reaches steady state.
	s.Orch.controlCycle()
	s.Orch.controlCycle()
	return s
}
