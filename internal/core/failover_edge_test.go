package core

import (
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/mesh"
)

// TestNodeRecoversMidEvacuationNoDoublePlace pins the recovery-queue edge
// case where the dead node itself comes back while its evacuated component is
// still working through backoff retries: dst fits nowhere else, so every
// retry fails until the victim's own capacity returns and one retry lands it
// back home. The component must be placed exactly once — a queue drain racing
// a still-armed backoff retry must not double-place it or leak a pending
// record in the recovery queue.
func TestNodeRecoversMidEvacuationNoDoublePlace(t *testing.T) {
	// n1 holds the pinned src (CPU 2 of 3); only n2 can take dst (CPU 2),
	// n3/n4 are too small, so dst is stranded until n2 recovers.
	nodes := []cluster.Node{
		{Name: "n1", CPU: 3, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
		{Name: "n3", CPU: 1, MemoryMB: 4096},
		{Name: "n4", CPU: 1, MemoryMB: 4096},
	}
	s := chaosSim(t, nodes, Config{})
	defer s.Close()
	w := newPairWorkload("pair", 8, "n1", 2)
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	if assignment["dst"] != "n2" {
		t.Fatalf("dst placed on %q, want n2", assignment["dst"])
	}

	// Crash at 60s → verdict at ~150s (3 failed sweeps), evacuation and
	// backoff retries start. Recovery at 160s is observed by the 180s sweep,
	// while retries are still mid-flight (the last budgeted attempt lands
	// between ~178s and ~217s depending on jitter).
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: "n2"},
		{AtSec: 160, Type: faults.NodeRecover, Node: "n2"},
	}}
	if err := sched.ValidateWindows(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	rep := s.Orch.RecoveryReport()
	if len(rep.Detections) != 1 {
		t.Fatalf("detections = %v, want exactly one", rep.Detections)
	}
	if len(rep.Failovers) != 1 {
		t.Fatalf("failovers = %v, want exactly one placement of dst", rep.Failovers)
	}
	if got := rep.Failovers[0]; got.Component != "dst" || got.To != "n2" {
		t.Fatalf("failover = %+v, want dst re-placed on the recovered n2", got)
	}
	if rep.QueuedNow != 0 {
		t.Fatalf("recovery queue holds %d leaked entries: %v",
			rep.QueuedNow, s.Orch.QueuedFailovers())
	}
	// Exactly one placement record for dst — a double-place would show up as
	// a duplicate here (and as over-counted CPU on n2).
	var dstPlacements int
	for _, p := range s.Cluster.Placements() {
		if p.App == "pair" && p.Component == "dst" {
			dstPlacements++
		}
	}
	if dstPlacements != 1 {
		t.Fatalf("dst has %d placements, want exactly 1", dstPlacements)
	}
	if !w.attached {
		t.Fatal("workload stream never re-attached after the failover")
	}
	if parked := s.Net.ParkedFlows(); parked != 0 {
		t.Fatalf("%d parked flows leaked past recovery", parked)
	}
	rate, err := s.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 7.9 {
		t.Fatalf("stream rate %.2f Mbps after recovery, want ~8", rate)
	}
}

// TestLinkFlapShorterThanProbeIntervalLeaksNothing pins the second edge case:
// a link outage that opens and closes entirely between two probe sweeps. The
// control plane must never see it (no detections, no failovers), and the
// data plane must fully recover — the flow parks during the outage and
// resumes at the flap's end rather than leaking as permanently parked.
func TestLinkFlapShorterThanProbeIntervalLeaksNothing(t *testing.T) {
	// Two nodes, one link: when it goes down there is no alternate route, so
	// the stream genuinely parks instead of rerouting.
	topo := mesh.FullMesh([]string{"n1", "n2"}, 25, time.Millisecond, time.Hour)
	nodes := []cluster.Node{
		{Name: "n1", CPU: 3, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
	}
	cfg := Config{
		EnableMigration:   true,
		MonitorInterval:   30 * time.Second,
		MigrationDowntime: 2 * time.Second,
	}
	s, err := NewSimulation(topo, nodes, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newPairWorkload("pair", 8, "n1", 2)
	if _, err := s.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}

	// Sweeps land at 60s and 90s; the flap lives entirely inside (65s, 75s).
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 65, Type: faults.LinkDown, LinkA: "n1", LinkB: "n2"},
		{AtSec: 75, Type: faults.LinkUp, LinkA: "n1", LinkB: "n2"},
	}}
	if err := sched.ValidateWindows(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}

	// Mid-flap the stream must actually be parked — otherwise the scenario
	// is not exercising the stranded-flow path at all.
	s.Eng.At(70*time.Second, func() {
		if parked := s.Net.ParkedFlows(); parked != 1 {
			t.Errorf("at t=70s: %d parked flows, want 1 (flap should strand the stream)", parked)
		}
	})
	if err := s.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	rep := s.Orch.RecoveryReport()
	if len(rep.Detections) != 0 {
		t.Fatalf("sub-probe-interval flap produced detections: %v", rep.Detections)
	}
	if len(rep.Failovers) != 0 || rep.QueuedNow != 0 {
		t.Fatalf("flap triggered recovery machinery: %d failovers, %d queued",
			len(rep.Failovers), rep.QueuedNow)
	}
	if migs := s.Orch.Migrations(); len(migs) != 0 {
		t.Fatalf("flap triggered migrations: %v", migs)
	}
	if parked := s.Net.ParkedFlows(); parked != 0 {
		t.Fatalf("%d parked flows leaked past the flap", parked)
	}
	rate, err := s.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 7.9 {
		t.Fatalf("stream rate %.2f Mbps after flap, want ~8", rate)
	}
}
