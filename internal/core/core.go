// Package core is the BASS orchestrator: it deploys application DAGs onto a
// mesh-connected cluster with a pluggable placement policy, monitors link
// bandwidth through the net-monitor, and migrates components when the
// controller detects bandwidth violations — the full system of Fig 7,
// running over the simulated substrate.
package core

import (
	"errors"
	"fmt"
	"time"

	"bass/internal/cluster"
	"bass/internal/controller"
	"bass/internal/dag"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/netmon"
	"bass/internal/obs"
	"bass/internal/reconcile"
	"bass/internal/scheduler"
	"bass/internal/sim"
	"bass/internal/simnet"
	"bass/internal/slo"
)

// Sentinel errors.
var (
	ErrAppExists  = errors.New("core: application already deployed")
	ErrUnknownApp = errors.New("core: unknown application")
)

// Workload is an application that can run on the orchestrator. Implementations
// model their own traffic (streams/transfers through Env.Net) and metrics.
type Workload interface {
	// Graph returns the application's component DAG with bandwidth-annotated
	// edges. Called once at deployment.
	Graph() *dag.Graph
	// Start installs the workload's traffic and timers. The placement is
	// available through env.NodeOf.
	Start(env *Env) error
	// OnMigration tells the workload a component has moved. The component is
	// unavailable for the downtime window starting now; the workload must
	// re-route its traffic accordingly.
	OnMigration(env *Env, component, fromNode, toNode string, downtime time.Duration)
}

// Prioritized lets a workload declare its shedding priority for the
// reconciler's degraded-mode ladder: higher values are shed later. Workloads
// that do not implement it are prioritized by deployment order (earlier
// deployments rank higher).
type Prioritized interface {
	Priority() int
}

// Env is the execution environment handed to workloads.
type Env struct {
	app  string
	orch *Orchestrator
}

// App returns the application name the environment is scoped to.
func (e *Env) App() string { return e.app }

// Engine returns the simulation engine for timers and randomness.
func (e *Env) Engine() *sim.Engine { return e.orch.eng }

// Net returns the flow-level network.
func (e *Env) Net() *simnet.Network { return e.orch.net }

// Now reports current virtual time.
func (e *Env) Now() time.Duration { return e.orch.eng.Now() }

// NodeOf reports which node a component currently runs on ("" if absent).
func (e *Env) NodeOf(component string) string {
	return e.orch.clus.NodeOf(e.app, component)
}

// Tag builds the accounting tag for traffic between two components. The
// orchestrator measures pair goodput by these tags, so workloads must use
// them when creating streams and transfers.
func (e *Env) Tag(from, to string) string {
	return e.app + "/" + from + "->" + to
}

// Config assembles an orchestrator.
type Config struct {
	// Policy decides placement; defaults to the BASS longest-path scheduler.
	Policy scheduler.Policy
	// Monitor configures probing (defaults: §4.2 settings).
	Monitor netmon.Config
	// Controller configures migration decisions (defaults: §4.3 settings).
	Controller controller.Config
	// MonitorInterval is how often the controller evaluates the system — the
	// paper's "bandwidth querying interval" (30/60/90 s sweeps).
	MonitorInterval time.Duration
	// EnableMigration turns the controller loop on.
	EnableMigration bool
	// MigrationDowntime is how long a migrated component is unavailable
	// (paper: ~20 s for the videoconf server to re-establish WebRTC, ~4 s
	// for a social-network microservice restart).
	MigrationDowntime time.Duration
	// ReservedCPU is subtracted from every node's schedulable CPU to model
	// the k3s agent and monitoring daemons.
	ReservedCPU float64
	// OnlineProfiling refines DAG edge bandwidth requirements from observed
	// traffic peaks (§8's future-work item): each controller cycle, any edge
	// whose measured peak × ProfilingPeakFactor exceeds its declared
	// requirement is raised to that value. Declared requirements act as a
	// floor; profiling never lowers them.
	OnlineProfiling bool
	// ProfilingPeakFactor is the burst headroom applied to observed peaks
	// (default 1.6, the same factor the social-network profile uses).
	ProfilingPeakFactor float64
	// FailoverMaxRetries bounds placement attempts for a component stranded
	// by a node failure before it parks in the recovery queue (default 5).
	FailoverMaxRetries int
	// FailoverBackoffBase is the first retry delay after a failed failover
	// placement; each subsequent retry doubles it (default 5 s).
	FailoverBackoffBase time.Duration
	// FailoverBackoffMax caps the retry delay (default 2 min).
	FailoverBackoffMax time.Duration
	// FailoverBackoffJitter spreads each retry delay by ±frac, drawn from the
	// engine's seeded RNG so equal seeds stay byte-identical (default 0.2;
	// negative disables jitter).
	FailoverBackoffJitter float64
	// EnableReconcile replaces the reactive failover path with the
	// declarative reconciliation loop: deployments register desired-state
	// specs, and a reconciler diffs desired vs. observed placement each
	// epoch, converging through idempotent, bounded actions (see
	// internal/reconcile).
	EnableReconcile bool
	// Reconcile tunes the reconciliation loop (zero fields take reconcile
	// package defaults; a zero Epoch follows MonitorInterval).
	Reconcile reconcile.Config
	// PollingNet drives the simulated network with the legacy once-per-second
	// capacity polling loop instead of event-driven change-point scheduling.
	// Both drivers produce bit-identical experiment output (the equivalence
	// the simnet and experiments differential tests assert); polling exists
	// as an escape hatch and as the reference side of those tests.
	PollingNet bool
	// Shards partitions the mesh into this many regions (keyed by the
	// simulation seed) and runs the network's per-link and per-flow allocator
	// phases shard-parallel behind a bounded worker pool. 0 or 1 means
	// single-shard. The sharded driver is byte-identical to the single-shard
	// one at equal seeds — the sharded differential tests pin this — so the
	// setting trades wall-clock for nothing but worker overhead at small
	// scales. NewSimulation fails when Shards exceeds the node count.
	Shards int
	// EvalWorkers sizes the worker pool for the controller's per-application
	// evaluation fan-out and for chunked migration-candidate scoring. 0 or 1
	// evaluates serially. Decisions are byte-identical at any worker count:
	// the parallel phase only reads shared state, and every journal event,
	// metric, and placement mutation is committed serially in deployment
	// order afterwards.
	EvalWorkers int
	// LegacyControlLoop restores the pre-oracle control path: no path-metric
	// cache, per-link headroom probes, per-app probe sweeps, fresh node and
	// assignment snapshots on every migration. It exists as the reference
	// side of the control-plane benchmarks; decisions are equivalent but the
	// multi-app journal interleaving differs (probes repeat per app).
	LegacyControlLoop bool
	// BatchPlacement wraps Policy in the batch joint search: each deployed
	// DAG is first placed by the greedy seed policy, then improved by a
	// budgeted k-best local search scored against the path oracle (see
	// scheduler.Batch). Orthogonal to migration — it changes only where
	// components start.
	BatchPlacement bool
	// Batch tunes the batch search. A zero MoveBudget defaults to
	// DefaultBatchMoveBudget; a negative one disables the search outright,
	// making the run byte-identical to the plain greedy policy (the
	// differential tests pin this). A zero Seed follows the engine seed.
	Batch scheduler.BatchConfig
	// EnableSLO runs the SLO evaluator at the end of every control cycle:
	// a mesh-wide link-headroom spec and a control-loop latency spec are
	// registered when observability attaches, plus a dependency-goodput spec
	// per deployed app. The evaluator burns error budgets against the
	// attached metric store and journals alert_fired/alert_resolved
	// transitions (see internal/slo). Inert until AttachObservability
	// supplies a store, and — like migration itself — only evaluated while
	// the controller loop runs (EnableMigration).
	EnableSLO bool
	// SLO tunes the evaluator (zero fields take slo package defaults; a zero
	// Interval follows MonitorInterval).
	SLO slo.Config
}

// DefaultBatchMoveBudget is the joint-candidate evaluation budget used when
// BatchPlacement is on and Config.Batch.MoveBudget is zero. Solve time grows
// linearly in the budget; 256 keeps per-DAG scheduling well under the
// millisecond scale the scheduler benchmarks gate.
const DefaultBatchMoveBudget = 256

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = scheduler.NewBass(scheduler.HeuristicLongestPath)
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = 30 * time.Second
	}
	if c.MigrationDowntime == 0 {
		c.MigrationDowntime = 20 * time.Second
	}
	if c.Controller == (controller.Config{}) {
		c.Controller = controller.DefaultConfig()
	}
	if c.ProfilingPeakFactor == 0 {
		c.ProfilingPeakFactor = 1.6
	}
	if c.FailoverMaxRetries == 0 {
		c.FailoverMaxRetries = 5
	}
	if c.FailoverBackoffBase == 0 {
		c.FailoverBackoffBase = 5 * time.Second
	}
	if c.FailoverBackoffMax == 0 {
		c.FailoverBackoffMax = 2 * time.Minute
	}
	if c.FailoverBackoffJitter == 0 {
		c.FailoverBackoffJitter = 0.2
	} else if c.FailoverBackoffJitter < 0 {
		c.FailoverBackoffJitter = 0
	}
	if c.Reconcile.Epoch == 0 {
		c.Reconcile.Epoch = c.MonitorInterval
	}
	if c.Reconcile.BackoffBase == 0 {
		c.Reconcile.BackoffBase = c.FailoverBackoffBase
	}
	if c.Reconcile.BackoffMax == 0 {
		c.Reconcile.BackoffMax = c.FailoverBackoffMax
	}
	if c.Reconcile.JitterFrac == 0 {
		c.Reconcile.JitterFrac = c.FailoverBackoffJitter
	}
	if c.SLO.Interval == 0 {
		c.SLO.Interval = c.MonitorInterval
	}
	return c
}

// MigrationEvent records one component move.
type MigrationEvent struct {
	At        time.Duration
	App       string
	Component string
	From, To  string
}

// EvaluationRecord captures one controller cycle for Table 1-style output.
type EvaluationRecord struct {
	At         time.Duration
	Violating  int
	Candidates int
	Migrated   int
}

type deployedApp struct {
	name      string
	workload  Workload
	graph     *dag.Graph
	env       *Env
	edgePeaks map[string]float64 // tag → peak observed Mbps (online profiling)
	scratch   *appEvalScratch
}

// Orchestrator is the BASS control plane over a simulated mesh.
type Orchestrator struct {
	cfg     Config
	eng     *sim.Engine
	topo    *mesh.Topology
	net     *simnet.Network
	clus    *cluster.Cluster
	monitor *netmon.Monitor
	ctrl    *controller.Controller

	apps        map[string]*deployedApp
	appOrder    []string
	migrations  []MigrationEvent
	evaluations []EvaluationRecord
	stopMonitor func()
	schedLat    ringF64 // per-component scheduling latencies (Table 3)
	dagProc     ringF64 // DAG processing times (Table 4)

	// Control-plane hot-path state (see hotpath.go). The scratch slices and
	// prebuilt task closures let a quiet controller epoch run without
	// allocating; the pool fans per-app evaluation out across workers.
	evalPool        *sim.Pool
	appScratch      []*appEvalScratch
	evalTasks       []func()
	cycleExclude    map[string]bool // controller's re-migration guard, set per cycle
	cycleNodes      []scheduler.NodeInfo
	cycleNodesDirty bool
	schedNames      []string
	fullProbeFn     func(mesh.LinkID) error
	pathSpareFn     scheduler.PathQuery
	pathQueryErrs   uint64
	ctrlCycles      int
	ctrlAppEvals    int
	ctrlTargetScans int
	ctrlWallNS      int64

	// Failure-handling state (see failover.go).
	detections    []DetectionRecord
	failovers     []FailoverEvent
	mttrs         []time.Duration
	failoverQueue []*pendingFailover

	// Reconciliation state (see reconcile_host.go); rec is nil unless
	// Config.EnableReconcile. nodeDownSpan remembers the verdict span of each
	// currently-dead node so self-detected drift stays causally explainable.
	rec           *reconcile.Reconciler
	stopReconcile func()
	nodeDownSpan  map[string]uint64

	// plane is the observability plane shared with the monitor and
	// controller; nil (the default) records nothing at no cost.
	plane *obs.Plane

	// SLO state (see internal/slo); sloEval is nil unless Config.EnableSLO
	// and AttachObservability has run. epochGapH feeds the control loop's
	// own cadence metric through a pre-resolved handle and lastCycleAt
	// remembers the previous cycle's virtual time, so the per-epoch tail
	// stays allocation free.
	sloEval      *slo.Evaluator
	epochGapH    obs.MetricHandle
	lastCycleAt  time.Duration
	hasCycleTime bool
}

// New wires an orchestrator over an engine, topology, network, and cluster.
func New(eng *sim.Engine, topo *mesh.Topology, net *simnet.Network, clus *cluster.Cluster, cfg Config) *Orchestrator {
	cfg = cfg.withDefaults()
	if cfg.LegacyControlLoop {
		cfg.Monitor.DisablePathCache = true
		cfg.Monitor.DisableBatchProbe = true
		cfg.EvalWorkers = 0
	}
	o := &Orchestrator{
		cfg:  cfg,
		eng:  eng,
		topo: topo,
		net:  net,
		clus: clus,
		apps: make(map[string]*deployedApp),
	}
	o.monitor = netmon.New(topo, net.Prober(), cfg.Monitor, eng.Now)
	o.ctrl = controller.New(o.monitor, cfg.Controller, eng.Now)
	if cfg.EvalWorkers > 1 {
		o.evalPool = sim.NewPool(cfg.EvalWorkers)
	}
	// Hoisted hot-path closures: allocated once here instead of per decision.
	o.fullProbeFn = o.monitor.FullProbe
	o.pathSpareFn = func(a, b string) float64 {
		spare, networked, perr := o.monitor.PathSpareMbps(a, b)
		if perr != nil {
			return 0
		}
		if !networked {
			return simnet.LocalMbps
		}
		return spare
	}
	if cfg.BatchPlacement {
		bcfg := o.cfg.Batch
		if bcfg.MoveBudget == 0 {
			bcfg.MoveBudget = DefaultBatchMoveBudget
		}
		if bcfg.Seed == 0 {
			bcfg.Seed = eng.Seed()
		}
		batch := scheduler.NewBatch(o.cfg.Policy, bcfg)
		batch.SetPathQuery(o.pathSpareFn)
		o.cfg.Policy = batch
	}
	if cfg.EnableReconcile {
		o.rec = reconcile.New(cfg.Reconcile, reconcileHost{o})
		o.nodeDownSpan = make(map[string]uint64)
	}
	return o
}

// AttachObservability wires a decision journal and a metric store (either may
// be nil) into the orchestrator, its monitor, and its controller, stamped
// with the engine's virtual clock. The same seed then yields a byte-identical
// journal: every event derives from deterministic simulation state. It
// returns the assembled plane.
func (o *Orchestrator) AttachObservability(journal *obs.Journal, store *metricstore.Store) *obs.Plane {
	o.plane = obs.NewPlane(journal, store, o.eng.Now)
	o.plane.SetTraceSeed(o.eng.Seed())
	o.monitor.SetObserver(o.plane)
	o.ctrl.SetObserver(o.plane)
	o.net.SetObserver(o.plane)
	o.rec.SetObserver(o.plane)
	// Pre-resolve the hot path's metric handles — the quiet-epoch
	// zero-allocation contract holds with observability attached too.
	for _, s := range o.appScratch {
		o.resolveEdgeHandles(s)
	}
	if o.cfg.EnableSLO {
		o.sloEval = slo.New(o.plane, o.cfg.SLO)
		o.epochGapH = o.plane.MetricHandle(obs.MetricControlEpochGap, nil)
		// Mesh-wide headroom and the control loop's own cadence are always
		// worth watching; per-app goodput specs ride along with each Deploy.
		mustRegister(o.sloEval, slo.Spec{Name: "mesh/headroom", Kind: slo.LinkHeadroom})
		mustRegister(o.sloEval, slo.Spec{Name: "control/loop", Kind: slo.ControlLatency})
		for _, name := range o.appOrder {
			o.registerAppSLO(name)
		}
	}
	return o.plane
}

// mustRegister panics on registration errors — the auto-registered specs are
// statically valid, so an error here is a programming bug, not bad input.
func mustRegister(e *slo.Evaluator, spec slo.Spec) {
	if err := e.Register(spec); err != nil {
		panic(err)
	}
}

// registerAppSLO registers the app's dependency-goodput SLO (no-op without
// an evaluator).
func (o *Orchestrator) registerAppSLO(app string) {
	if o.sloEval == nil {
		return
	}
	mustRegister(o.sloEval, slo.Spec{Name: "goodput/" + app, Kind: slo.DependencyGoodput, App: app})
}

// SLO exposes the evaluator (nil unless EnableSLO with observability
// attached) for dashboards and experiments.
func (o *Orchestrator) SLO() *slo.Evaluator { return o.sloEval }

// planeRecorder adapts the plane to the scheduler's Recorder: every candidate
// row of an Explanation becomes one sched_candidate journal event under the
// decision's cause span, so bass-trace explain can rebuild the scoreboard.
type planeRecorder struct {
	plane *obs.Plane
	app   string
	cause uint64
}

func (r planeRecorder) RecordExplanation(ex scheduler.Explanation) {
	for _, cs := range ex.Candidates {
		r.plane.EmitSpan(obs.Event{
			Type: obs.EventSchedCandidate, App: r.app, Component: ex.Component,
			Node: cs.Node, Cause: r.cause, Reason: string(cs.Rejection),
			Value: cs.Score, Want: float64(cs.DepCount),
			Local: cs.LocalMbps, Remote: cs.RemoteMbps,
		})
	}
}

// recorder builds a scheduler Recorder journaling under the given cause, or
// nil when no plane is attached so choice passes skip all bookkeeping.
func (o *Orchestrator) recorder(app string, cause uint64) scheduler.Recorder {
	if !o.plane.Enabled() {
		return nil
	}
	return planeRecorder{plane: o.plane, app: app, cause: cause}
}

// Observability returns the attached plane (nil when unattached).
func (o *Orchestrator) Observability() *obs.Plane { return o.plane }

// Monitor exposes the net-monitor (read-only use by experiments).
func (o *Orchestrator) Monitor() *netmon.Monitor { return o.monitor }

// Controller exposes the bandwidth controller.
func (o *Orchestrator) Controller() *controller.Controller { return o.ctrl }

// Cluster exposes placement state.
func (o *Orchestrator) Cluster() *cluster.Cluster { return o.clus }

// Migrations returns the migration log.
func (o *Orchestrator) Migrations() []MigrationEvent {
	out := make([]MigrationEvent, len(o.migrations))
	copy(out, o.migrations)
	return out
}

// Evaluations returns the controller cycle log.
func (o *Orchestrator) Evaluations() []EvaluationRecord {
	out := make([]EvaluationRecord, len(o.evaluations))
	copy(out, o.evaluations)
	return out
}

// Bootstrap performs the startup max-capacity probing round (§4.2) and, if
// migration is enabled, starts the periodic controller loop.
func (o *Orchestrator) Bootstrap() error {
	if err := o.monitor.FullProbeAll(); err != nil {
		return fmt.Errorf("core: bootstrap probing: %w", err)
	}
	if o.cfg.EnableMigration && o.stopMonitor == nil {
		o.stopMonitor = o.eng.Every(o.cfg.MonitorInterval, o.controlCycle)
	}
	if o.rec != nil && o.stopReconcile == nil {
		// The epoch tick is the reconciler's heartbeat; topology changes
		// (injected faults) additionally kick an eager same-time pass so
		// drift converges without waiting out the epoch.
		o.stopReconcile = o.eng.Every(o.rec.Config().Epoch, o.rec.Tick)
		o.net.OnTopologyApplied(o.rec.Kick)
	}
	return nil
}

// Stop halts the controller and reconciler loops and releases the evaluation
// worker pool. Control cycles run after Stop fall back to serial evaluation —
// decisions are byte-identical either way.
func (o *Orchestrator) Stop() {
	if o.stopMonitor != nil {
		o.stopMonitor()
		o.stopMonitor = nil
	}
	if o.stopReconcile != nil {
		o.stopReconcile()
		o.stopReconcile = nil
		o.net.OnTopologyApplied(nil)
	}
	if o.evalPool != nil {
		o.evalPool.Close()
		o.evalPool = nil
		o.evalTasks = o.evalTasks[:0]
	}
}

// Reconciler exposes the reconciliation loop (nil unless EnableReconcile).
func (o *Orchestrator) Reconciler() *reconcile.Reconciler { return o.rec }

// nodeInfos builds a fresh scheduler view of the cluster (deploy and
// failover paths; the control cycle reuses a snapshot via cycleNodeInfos).
func (o *Orchestrator) nodeInfos() []scheduler.NodeInfo {
	return o.appendNodeInfos(nil)
}

// appendNodeInfos appends the scheduler's view of every schedulable node to
// out, reusing its capacity.
func (o *Orchestrator) appendNodeInfos(out []scheduler.NodeInfo) []scheduler.NodeInfo {
	o.schedNames = o.clus.SchedulableNodesInto(o.schedNames[:0])
	for _, name := range o.schedNames {
		n, err := o.clus.Node(name)
		if err != nil {
			continue
		}
		free := o.clus.FreeCPU(name) - o.cfg.ReservedCPU
		if free < 0 {
			free = 0
		}
		total := n.CPU - o.cfg.ReservedCPU
		if total < 0 {
			total = 0
		}
		out = append(out, scheduler.NodeInfo{
			Name:             name,
			FreeCPU:          free,
			FreeMemoryMB:     o.clus.FreeMemoryMB(name),
			TotalCPU:         total,
			TotalMemoryMB:    n.MemoryMB,
			LinkCapacityMbps: o.monitor.NodeLinkCapacityMbps(name),
		})
	}
	return out
}

// Deploy schedules and starts a workload. Call Bootstrap first so the
// monitor has link capacities for node ranking.
func (o *Orchestrator) Deploy(name string, w Workload) (scheduler.Assignment, error) {
	return o.DeployAt(name, w, nil)
}

// DeployAt deploys like Deploy but forces the listed components onto the
// given nodes for the initial placement (they remain migratable afterwards —
// unlike a dag.Pin label). The paper's Fig 12 experiment starts the Pion
// server on node 2 this way.
func (o *Orchestrator) DeployAt(name string, w Workload, overrides scheduler.Assignment) (scheduler.Assignment, error) {
	if _, ok := o.apps[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrAppExists, name)
	}
	g := w.Graph()
	if g.AppName != name {
		return nil, fmt.Errorf("core: workload graph is named %q, deploying as %q", g.AppName, name)
	}
	deploySpan := o.plane.EmitSpan(obs.Event{Type: obs.EventDeploy, App: name,
		Reason: o.cfg.Policy.Name(), Value: float64(g.NumComponents())})
	assignment, err := o.schedule(g, o.recorder(name, deploySpan))
	if err != nil {
		return nil, err
	}
	for comp, node := range overrides {
		if !g.HasComponent(comp) {
			return nil, fmt.Errorf("core: override for unknown component %q", comp)
		}
		assignment[comp] = node
	}
	for _, comp := range g.Components() { // sorted: deterministic journal order
		node, ok := assignment[comp]
		if !ok {
			continue
		}
		c, cerr := g.Component(comp)
		if cerr != nil {
			return nil, cerr
		}
		if perr := o.clus.Place(cluster.Placement{
			App:       name,
			Component: comp,
			Node:      node,
			CPU:       c.CPU,
			MemoryMB:  c.MemoryMB,
		}); perr != nil {
			return nil, fmt.Errorf("core: commit placement: %w", perr)
		}
		reason := "policy placement"
		if _, forced := overrides[comp]; forced {
			reason = "deployment override"
		}
		o.plane.EmitSpan(obs.Event{Type: obs.EventSchedule, App: name, Component: comp,
			To: node, Cause: deploySpan, Reason: reason})
	}
	env := &Env{app: name, orch: o}
	app := &deployedApp{name: name, workload: w, graph: g, env: env,
		edgePeaks: make(map[string]float64)}
	o.apps[name] = app
	o.appOrder = append(o.appOrder, name)
	o.registerAppSLO(name)
	app.scratch = o.newAppScratch(app)
	o.appScratch = append(o.appScratch, app.scratch)
	o.rebuildEvalTasks()
	// Flows the workload opens at startup cite the deploy as their cause.
	o.net.SetCause(deploySpan)
	err = w.Start(env)
	o.net.SetCause(0)
	if err != nil {
		return nil, fmt.Errorf("core: start workload %q: %w", name, err)
	}
	if o.rec != nil {
		// The DAG + policy become the app's desired state: every component
		// placed on a healthy node. Priority defaults to deployment order
		// (earlier = higher) unless the workload declares its own.
		prio := -(len(o.appOrder) - 1)
		if p, ok := w.(Prioritized); ok {
			prio = p.Priority()
		}
		spec := reconcile.Spec{App: name, Priority: prio}
		for _, cname := range g.Components() {
			c, cerr := g.Component(cname)
			if cerr != nil {
				continue
			}
			spec.Components = append(spec.Components, reconcile.ComponentSpec{
				Name: cname, CPU: c.CPU, MemoryMB: c.MemoryMB,
			})
		}
		o.rec.SetSpec(spec)
	}
	return assignment, nil
}

// schedule runs the placement policy, recording Table 3/4 timings. When a
// recorder is attached and the policy can explain itself, the per-component
// candidate scoreboards are journaled alongside the decision.
func (o *Orchestrator) schedule(g *dag.Graph, rec scheduler.Recorder) (scheduler.Assignment, error) {
	nodes := o.nodeInfos()
	procStart := time.Now()
	var assignment scheduler.Assignment
	var err error
	if ep, ok := o.cfg.Policy.(scheduler.ExplainingPolicy); ok && rec != nil {
		assignment, err = ep.ScheduleExplained(g, nodes, rec)
	} else {
		assignment, err = o.cfg.Policy.Schedule(g, nodes)
	}
	elapsed := time.Since(procStart)
	if err != nil {
		return nil, fmt.Errorf("core: schedule %q with %s: %w", g.AppName, o.cfg.Policy.Name(), err)
	}
	o.dagProc.push(float64(elapsed.Nanoseconds()))
	if n := g.NumComponents(); n > 0 {
		per := float64(elapsed.Nanoseconds()) / float64(n)
		for i := 0; i < n; i++ {
			o.schedLat.push(per)
		}
	}
	return assignment, nil
}

// SchedulingLatenciesNS returns per-component scheduling latencies (Table 3).
// The buffer keeps the latest latencyRingCap samples; below that the output
// is identical to an unbounded log.
func (o *Orchestrator) SchedulingLatenciesNS() []float64 {
	return o.schedLat.snapshot()
}

// DAGProcessingNS returns whole-DAG scheduling times (Table 4), bounded like
// SchedulingLatenciesNS.
func (o *Orchestrator) DAGProcessingNS() []float64 {
	return o.dagProc.snapshot()
}

// usages assembles the controller's view of every deployed, cross-node
// dependency pair: required bandwidth from the DAG, achieved bandwidth from
// passive per-tag measurement, and path capacity/spare from the monitor.
func (o *Orchestrator) usages(app *deployedApp) []scheduler.DependencyUsage {
	var out []scheduler.DependencyUsage
	for _, e := range app.graph.Edges() {
		fromNode := o.clus.NodeOf(app.name, e.From)
		toNode := o.clus.NodeOf(app.name, e.To)
		if fromNode == "" || toNode == "" || fromNode == toNode {
			continue
		}
		pathCap, _, err := o.monitor.PathCapacityMbps(fromNode, toNode)
		if err != nil {
			o.notePathQueryErrors(1)
			continue
		}
		pathSpare, _, err := o.monitor.PathSpareMbps(fromNode, toNode)
		if err != nil {
			o.notePathQueryErrors(1)
			continue
		}
		usage := scheduler.DependencyUsage{
			Component:         e.From,
			Dep:               e.To,
			RequiredMbps:      e.BandwidthMbps,
			AchievedMbps:      o.net.FlowRateByTag(app.env.Tag(e.From, e.To)),
			PathCapacityMbps:  pathCap,
			PathAvailableMbps: pathSpare,
		}
		if o.plane.Enabled() && usage.RequiredMbps > 0 {
			o.plane.Metric(obs.MetricDepGoodput, usage.AchievedMbps/usage.RequiredMbps,
				"app", app.name, "component", e.From, "dep", e.To)
		}
		out = append(out, usage)
	}
	return out
}

// profileEdges tracks per-edge traffic peaks and, when online profiling is
// enabled, raises edge requirements whose observed peak outgrew the declared
// value (§8).
func (o *Orchestrator) profileEdges(app *deployedApp) {
	for _, e := range app.graph.Edges() {
		tag := app.env.Tag(e.From, e.To)
		rate := o.net.FlowRateByTag(tag)
		if rate > app.edgePeaks[tag] {
			app.edgePeaks[tag] = rate
		}
		if !o.cfg.OnlineProfiling {
			continue
		}
		if want := app.edgePeaks[tag] * o.cfg.ProfilingPeakFactor; want > e.BandwidthMbps {
			_ = app.graph.SetWeight(e.From, e.To, want)
		}
	}
}

// EdgePeakMbps reports the peak observed traffic for an app edge so far.
func (o *Orchestrator) EdgePeakMbps(appName, from, to string) float64 {
	app, ok := o.apps[appName]
	if !ok {
		return 0
	}
	return app.edgePeaks[app.env.Tag(from, to)]
}

// controlCycle runs one controller evaluation across all apps, dispatching
// to the hot path (hotpath.go) or the legacy reference loop, and accounts
// the wall-clock the control plane spent.
func (o *Orchestrator) controlCycle() {
	start := time.Now()
	if o.cfg.LegacyControlLoop {
		o.legacyControlCycle()
	} else {
		o.fastControlCycle()
	}
	o.ctrlWallNS += time.Since(start).Nanoseconds()
	o.ctrlCycles++
	o.ctrlAppEvals += len(o.appOrder)
	o.finishControlEpoch()
}

// finishControlEpoch is the serial tail every control cycle shares: record
// the loop's own epoch-to-epoch cadence and run the SLO evaluator, after all
// the cycle's metrics and journal events have been committed. Quiet epochs
// pass through without allocating.
func (o *Orchestrator) finishControlEpoch() {
	now := o.eng.Now()
	if o.hasCycleTime {
		o.epochGapH.Emit((now - o.lastCycleAt).Seconds())
	}
	o.lastCycleAt, o.hasCycleTime = now, true
	if o.sloEval != nil {
		o.sloEval.Tick()
	}
}

// legacyControlCycle is the pre-oracle control loop: each app runs a full
// Evaluate — probe sweep included — in sequence. Node liveness transitions
// (verdicts and recoveries) surface on whichever app's evaluation first
// observes them and are handled globally — failover evacuates the dead
// node's components for every app, not just the observer. Kept as the
// reference side of the control-plane benchmarks.
func (o *Orchestrator) legacyControlCycle() {
	for _, name := range o.appOrder {
		app := o.apps[name]
		o.profileEdges(app)
		decision, err := o.ctrl.Evaluate(app.graph,
			func() []scheduler.DependencyUsage { return o.usages(app) },
			o.monitor.FullProbe)
		if err != nil {
			continue // evaluation failure: retry next cycle
		}
		for _, node := range decision.NodesDown {
			o.handleNodeDown(node, decision.NodeDownSpans[node])
		}
		for _, node := range decision.NodesRecovered {
			o.handleNodeRecovered(node, decision.NodeRecoveredSpans[node])
		}
		migrated := 0
		for _, comp := range decision.Migrate {
			if o.migrate(app, comp, decision.CandidateSpans[comp]) {
				migrated++
			}
		}
		o.evaluations = append(o.evaluations, EvaluationRecord{
			At:         o.eng.Now(),
			Violating:  len(decision.Report.Violating),
			Candidates: len(decision.Report.Candidates),
			Migrated:   migrated,
		})
	}
	// Capacity can return without a node-recovery transition (e.g. another
	// app released resources): give queued components a chance every cycle.
	o.drainFailoverQueue()
}

// migrate moves one component to the best target node, reporting success.
// cause is the span of the migration_candidate verdict that approved the
// move; every journal event the move produces chains back to it.
func (o *Orchestrator) migrate(app *deployedApp, comp string, cause uint64) bool {
	o.ctrlTargetScans++
	assignment := make(scheduler.Assignment)
	for _, c := range app.graph.Components() {
		if node := o.clus.NodeOf(app.name, c); node != "" {
			assignment[c] = node
		}
	}
	target, err := scheduler.ChooseMigrationTargetExplained(
		app.graph, comp, assignment, o.nodeInfos(),
		func(a, b string) float64 {
			spare, networked, perr := o.monitor.PathSpareMbps(a, b)
			if perr != nil {
				return 0
			}
			if !networked {
				return simnet.LocalMbps
			}
			return spare
		},
		o.ctrl.Config().Migration,
		o.recorder(app.name, cause),
	)
	if err != nil {
		o.ctrl.RecordMigrationFailure(comp)
		o.plane.Emit(obs.Event{Type: obs.EventMigrationRejected, App: app.name,
			Component: comp, Cause: cause, Reason: "no feasible target: " + err.Error()})
		return false
	}
	from := assignment[comp]
	if err := o.clus.Move(app.name, comp, target); err != nil {
		o.ctrl.RecordMigrationFailure(comp)
		o.plane.Emit(obs.Event{Type: obs.EventMigrationRejected, App: app.name,
			Component: comp, To: target, Cause: cause, Reason: "commit failed: " + err.Error()})
		return false
	}
	o.cycleNodesDirty = true
	o.commitMigration(app, comp, from, target, cause)
	return true
}

// commitMigration records and journals a committed move and notifies the
// workload — the shared tail of migrate and migrateFast.
func (o *Orchestrator) commitMigration(app *deployedApp, comp, from, target string, cause uint64) {
	o.ctrl.RecordMigration(comp)
	o.migrations = append(o.migrations, MigrationEvent{
		At:        o.eng.Now(),
		App:       app.name,
		Component: comp,
		From:      from,
		To:        target,
	})
	migSpan := o.plane.EmitSpan(obs.Event{Type: obs.EventMigration, App: app.name, Component: comp,
		From: from, To: target, Cause: cause, Reason: "bandwidth violation persisted past cooldown"})
	if o.plane.Enabled() {
		o.plane.Metric(obs.MetricMigrations, float64(len(o.migrations)))
	}
	// The state transfer and any flows the workload re-routes cite the move.
	o.net.SetCause(migSpan)
	app.workload.OnMigration(app.env, comp, from, target, o.migrationDowntime(app, comp, from, target))
	o.net.SetCause(0)
}

// migrationDowntime charges the restart cost plus, for stateful components,
// the time to ship their state across the mesh (§8's CRIU/Medes-style
// stateful migration). The state transfer is also injected as real traffic
// so it contends with application flows.
func (o *Orchestrator) migrationDowntime(app *deployedApp, comp, from, to string) time.Duration {
	downtime := o.cfg.MigrationDowntime
	c, err := app.graph.Component(comp)
	if err != nil || c.StateMB <= 0 || from == "" || from == to {
		return downtime
	}
	capMbps, networked, cerr := o.monitor.PathCapacityMbps(from, to)
	if cerr != nil || !networked {
		return downtime
	}
	if capMbps < 0.5 {
		capMbps = 0.5
	}
	transfer := time.Duration(c.StateMB * 8 / capMbps * float64(time.Second))
	_, _ = o.net.AddTransfer(app.name+"/__state__/"+comp, from, to, c.StateMB*1e6, 0, nil)
	return downtime + transfer
}

// ForceMigrate moves a component immediately (used by experiments that
// script migrations, e.g. Fig 14a's restart-cost measurement).
func (o *Orchestrator) ForceMigrate(appName, comp, toNode string) error {
	app, ok := o.apps[appName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownApp, appName)
	}
	from := o.clus.NodeOf(appName, comp)
	if err := o.clus.Move(appName, comp, toNode); err != nil {
		return err
	}
	o.migrations = append(o.migrations, MigrationEvent{
		At: o.eng.Now(), App: appName, Component: comp, From: from, To: toNode,
	})
	migSpan := o.plane.EmitSpan(obs.Event{Type: obs.EventMigration, App: appName, Component: comp,
		From: from, To: toNode, Reason: "forced by experiment script"})
	if o.plane.Enabled() {
		o.plane.Metric(obs.MetricMigrations, float64(len(o.migrations)))
	}
	o.net.SetCause(migSpan)
	app.workload.OnMigration(app.env, comp, from, toNode, o.migrationDowntime(app, comp, from, toNode))
	o.net.SetCause(0)
	return nil
}
