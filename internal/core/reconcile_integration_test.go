package core

import (
	"bytes"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
	"bass/internal/reconcile"
)

// TestReconcileConvergesAfterCrash pins the PR's convergence invariant: with
// the reconciler enabled, a crash turns into drift, the drift into bounded
// actions, and observed placement equals desired placement within a few
// epochs of the last fault — without restarting anything.
func TestReconcileConvergesAfterCrash(t *testing.T) {
	nodes := fourNodes()
	nodes[0].CPU = 3
	s := chaosSim(t, nodes, Config{EnableReconcile: true})
	defer s.Close()
	w := newPairWorkload("pair", 8, "n1", 2)
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	victim := assignment["dst"]
	if victim == assignment["src"] {
		t.Fatalf("pair co-located on %q; scenario needs a cross-node pair", victim)
	}

	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: victim},
		{AtSec: 240, Type: faults.NodeRecover, Node: victim},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}

	rec := s.Orch.Reconciler()
	if rec == nil {
		t.Fatal("EnableReconcile did not attach a reconciler")
	}
	// Bounded convergence: the verdict lands at ~150s and survivors have
	// capacity, so well before the recovery at 240s the drift must be gone.
	s.Eng.At(230*time.Second, func() {
		if !rec.Converged() {
			t.Errorf("at t=230s: %d drifts outstanding, want converged before the node even recovers",
				rec.OutstandingDrift())
		}
	})
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if !rec.Converged() || rec.OutstandingDrift() != 0 {
		t.Fatalf("not converged at end: %d drifts outstanding", rec.OutstandingDrift())
	}
	if len(rec.Converges()) < 1 {
		t.Fatal("no converge episode recorded")
	}
	if rec.DriftsSeen() < 1 || rec.ActionsTotal() < 1 {
		t.Fatalf("drift/action counters empty: drifts=%d actions=%d",
			rec.DriftsSeen(), rec.ActionsTotal())
	}
	// Desired == observed: both components placed on healthy, uncordoned
	// nodes; the dead-node episode produced exactly one failover record.
	for _, comp := range []string{"src", "dst"} {
		node := s.Cluster.NodeOf("pair", comp)
		if node == "" {
			t.Fatalf("%s unplaced at end", comp)
		}
	}
	rep := s.Orch.RecoveryReport()
	if len(rep.Failovers) != 1 || rep.Failovers[0].Component != "dst" {
		t.Fatalf("failovers = %v, want exactly one for dst", rep.Failovers)
	}
	if rep.QueuedNow != 0 {
		t.Fatalf("legacy recovery queue used in reconcile mode: %d entries", rep.QueuedNow)
	}
	if !w.attached {
		t.Fatal("workload stream never re-attached")
	}
}

// TestReconcileParksThenConvergesWhenCapacityReturns drives the degraded-mode
// ladder to its last rung: dst fits only on the victim, so migrate, re-route,
// and shed all fail, the drift parks, and parked retries keep probing until
// the victim recovers — then the reconciler converges without any restart.
func TestReconcileParksThenConvergesWhenCapacityReturns(t *testing.T) {
	nodes := []cluster.Node{
		{Name: "n1", CPU: 3, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
		{Name: "n3", CPU: 1, MemoryMB: 4096},
		{Name: "n4", CPU: 1, MemoryMB: 4096},
	}
	s := chaosSim(t, nodes, Config{EnableReconcile: true})
	defer s.Close()
	w := newPairWorkload("pair", 8, "n1", 2)
	if _, err := s.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}

	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: "n2"},
		{AtSec: 900, Type: faults.NodeRecover, Node: "n2"},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}

	rec := s.Orch.Reconciler()
	// Deep in the outage the drift must still be tracked — parked, not
	// dropped — with the ladder fully escalated.
	s.Eng.At(800*time.Second, func() {
		if rec.OutstandingDrift() != 1 {
			t.Errorf("at t=800s: %d drifts outstanding, want the parked dst", rec.OutstandingDrift())
		}
		if got := rec.DegradedMode(); got != reconcile.RungPark {
			t.Errorf("at t=800s: degraded mode %v, want park", got)
		}
	})
	if err := s.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if !rec.Converged() {
		t.Fatalf("not converged after capacity returned: %d outstanding", rec.OutstandingDrift())
	}
	if got := rec.DegradedMode(); got != reconcile.RungMigrate {
		t.Fatalf("degraded mode %v at end, want back to normal", got)
	}
	if node := s.Cluster.NodeOf("pair", "dst"); node != "n2" {
		t.Fatalf("dst on %q at end, want re-placed on the recovered n2", node)
	}
	if parked := s.Net.ParkedFlows(); parked != 0 {
		t.Fatalf("%d parked flows leaked", parked)
	}
}

// reconcileCrashRun executes the reconcile-mode crash scenario with a journal
// attached and returns the journal bytes.
func reconcileCrashRun(t *testing.T, polling bool) []byte {
	t.Helper()
	nodes := fourNodes()
	nodes[0].CPU = 3
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	topo := mesh.FullMesh(names, 25, time.Millisecond, time.Hour)
	cfg := Config{
		EnableMigration:   true,
		EnableReconcile:   true,
		MonitorInterval:   30 * time.Second,
		MigrationDowntime: 2 * time.Second,
		PollingNet:        polling,
	}
	s, err := NewSimulation(topo, nodes, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	journal := obs.NewJournal(0)
	s.AttachObservability(journal, metricstore.New(0))
	w := newPairWorkload("pair", 8, "n1", 2)
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: assignment["dst"]},
		{AtSec: 240, Type: faults.NodeRecover, Node: assignment["dst"]},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := journal.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReconcileJournalIdenticalAcrossDrivers extends the determinism contract
// to the reconciler: at equal seeds the full decision journal — drift,
// actions, convergence, gauges — is byte-identical whether the network runs
// event-driven or polling.
func TestReconcileJournalIdenticalAcrossDrivers(t *testing.T) {
	event := reconcileCrashRun(t, false)
	poll := reconcileCrashRun(t, true)
	if !bytes.Equal(event, poll) {
		t.Fatalf("reconcile journals differ across drivers:\nevent-driven %d bytes\npolling %d bytes",
			len(event), len(poll))
	}
	if !bytes.Contains(event, []byte(obs.EventReconcileDrift)) ||
		!bytes.Contains(event, []byte(obs.EventReconcileConverged)) {
		t.Fatal("journal missing reconcile drift/converged events")
	}
}
