package core

import (
	"bass/internal/netmon"
	"bass/internal/obs"
	"bass/internal/scheduler"
)

// This file is the control-plane hot path: one probe sweep per cycle feeding
// a parallel per-application read/score phase, then a serial commit phase in
// deployment order. The split keeps the repo's headline invariant intact —
// every journal event, metric, and placement mutation happens serially, so
// output is byte-identical at any EvalWorkers setting — while letting the
// expensive reads (path oracle queries, flow-rate lookups, candidate
// selection) run concurrently across apps. All per-cycle state lives in
// reused scratch, so a quiet epoch (no violations, no transitions) allocates
// nothing.

// latencyRingCap bounds the Table 3/4 latency logs. A week-long city run
// schedules far more DAGs than anyone tabulates; keeping the latest samples
// caps memory without changing sub-cap output.
const latencyRingCap = 8192

// ringF64 is a bounded sample buffer: once full, new samples overwrite the
// oldest. snapshot returns samples in insertion order, so below the cap it
// is byte-identical to a plain append log.
type ringF64 struct {
	buf  []float64
	next int
	full bool
}

func (r *ringF64) push(v float64) {
	if !r.full {
		if r.buf == nil {
			r.buf = make([]float64, 0, latencyRingCap)
		}
		r.buf = append(r.buf, v)
		if len(r.buf) == cap(r.buf) {
			r.full = true // next stays 0: the oldest sample is buf[0]
		}
		return
	}
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

func (r *ringF64) snapshot() []float64 {
	out := make([]float64, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		return append(out, r.buf[:r.next]...)
	}
	return append(out, r.buf...)
}

// edgeState is one DAG edge with its accounting tag and goodput metric
// handle precomputed, so the hot path never rebuilds tag strings or store
// keys.
type edgeState struct {
	from, to string
	tag      string
	goodputH obs.MetricHandle
}

// appEvalScratch is one application's reusable evaluation state. The edge
// and component lists are frozen at deploy time (edge weights stay live —
// they are read through the graph each cycle, so online profiling still
// applies); everything else is per-cycle scratch whose capacity survives
// between cycles.
type appEvalScratch struct {
	app   *deployedApp
	comps []string
	edges []edgeState

	reqs      []netmon.PathRequest
	reqEdge   []int // reqs[i] came from edges[reqEdge[i]]
	res       []netmon.PathResult
	usages    []scheduler.DependencyUsage
	usageEdge []int // usages[j] came from edges[usageEdge[j]]
	pathErrs  int
	report    scheduler.MigrationReport

	assignment scheduler.Assignment // rebuilt in the commit phase when migrating
}

func (o *Orchestrator) newAppScratch(app *deployedApp) *appEvalScratch {
	s := &appEvalScratch{app: app, comps: app.graph.Components()}
	for _, e := range app.graph.Edges() {
		s.edges = append(s.edges, edgeState{from: e.From, to: e.To, tag: app.env.Tag(e.From, e.To)})
	}
	s.assignment = make(scheduler.Assignment, len(s.comps))
	o.resolveEdgeHandles(s)
	return s
}

// resolveEdgeHandles binds each edge's dependency-goodput series handle to
// the attached plane (discarding handles when no store is attached). Called
// at deploy time and again when observability attaches after deployment.
func (o *Orchestrator) resolveEdgeHandles(s *appEvalScratch) {
	for i := range s.edges {
		e := &s.edges[i]
		e.goodputH = o.plane.MetricHandle(obs.MetricDepGoodput,
			map[string]string{"app": s.app.name, "component": e.from, "dep": e.to})
	}
}

// rebuildEvalTasks re-chunks the per-app fan-out after a deployment. The
// closures are prebuilt so the cycle itself allocates nothing.
func (o *Orchestrator) rebuildEvalTasks() {
	o.evalTasks = o.evalTasks[:0]
	if o.evalPool == nil || len(o.appScratch) < 2 {
		return
	}
	chunk := (len(o.appScratch) + o.cfg.EvalWorkers - 1) / o.cfg.EvalWorkers
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(o.appScratch); lo += chunk {
		hi := lo + chunk
		if hi > len(o.appScratch) {
			hi = len(o.appScratch)
		}
		batch := o.appScratch[lo:hi]
		o.evalTasks = append(o.evalTasks, func() {
			for _, s := range batch {
				o.evalApp(s)
			}
		})
	}
}

// evalApp runs one application's read/score phase: refresh profiling peaks,
// assemble dependency usages through the batch path oracle, and select
// migration candidates. It only reads shared state (the oracle and route
// cache guard themselves), writes only into per-app scratch, and emits
// nothing — safe to run concurrently across apps and bit-identical to the
// serial order because per-app work never depends on other apps.
func (o *Orchestrator) evalApp(s *appEvalScratch) {
	app := s.app
	g := app.graph
	for i := range s.edges {
		e := &s.edges[i]
		rate := o.net.FlowRateByTag(e.tag)
		if rate > app.edgePeaks[e.tag] {
			app.edgePeaks[e.tag] = rate
		}
		if !o.cfg.OnlineProfiling {
			continue
		}
		if want := app.edgePeaks[e.tag] * o.cfg.ProfilingPeakFactor; want > g.Weight(e.from, e.to) {
			_ = g.SetWeight(e.from, e.to, want)
		}
	}

	s.reqs = s.reqs[:0]
	s.reqEdge = s.reqEdge[:0]
	for i := range s.edges {
		e := &s.edges[i]
		fromNode := o.clus.NodeOf(app.name, e.from)
		toNode := o.clus.NodeOf(app.name, e.to)
		if fromNode == "" || toNode == "" || fromNode == toNode {
			continue
		}
		s.reqs = append(s.reqs, netmon.PathRequest{Src: fromNode, Dst: toNode})
		s.reqEdge = append(s.reqEdge, i)
	}
	s.res = o.monitor.PathMetricsBatch(s.reqs, s.res)
	s.usages = s.usages[:0]
	s.usageEdge = s.usageEdge[:0]
	s.pathErrs = 0
	for j := range s.res {
		r := &s.res[j]
		if r.Err != nil {
			s.pathErrs++ // counted, not silently dropped; surfaced in commit
			continue
		}
		e := &s.edges[s.reqEdge[j]]
		s.usageEdge = append(s.usageEdge, s.reqEdge[j])
		s.usages = append(s.usages, scheduler.DependencyUsage{
			Component:         e.from,
			Dep:               e.to,
			RequiredMbps:      g.Weight(e.from, e.to),
			AchievedMbps:      o.net.FlowRateByTag(e.tag),
			PathCapacityMbps:  r.Metrics.CapacityMbps,
			PathAvailableMbps: r.Metrics.SpareMbps,
		})
	}
	s.report = scheduler.FindMigrationCandidates(g, s.usages, o.ctrl.Config().Migration, o.cycleExclude)
}

// fastControlCycle is one controller epoch on the hot path: a single shared
// Observe, the parallel per-app read/score phase, then the serial commit in
// deployment order.
func (o *Orchestrator) fastControlCycle() {
	if len(o.appScratch) == 0 {
		o.drainFailoverQueue()
		return
	}
	cyc := o.ctrl.Observe(o.fullProbeFn)
	o.cycleExclude = cyc.Exclude
	o.cycleNodesDirty = true

	if len(o.evalTasks) > 0 {
		o.evalPool.Run(o.evalTasks)
	} else {
		for _, s := range o.appScratch {
			o.evalApp(s)
		}
	}

	for i, s := range o.appScratch {
		if o.plane.Enabled() {
			for j := range s.usages {
				u := &s.usages[j]
				if u.RequiredMbps > 0 {
					s.edges[s.usageEdge[j]].goodputH.Emit(u.AchievedMbps / u.RequiredMbps)
				}
			}
		}
		o.notePathQueryErrors(s.pathErrs)
		dec := o.ctrl.ResolveApp(&cyc, s.report)
		if i == 0 {
			// Liveness transitions are cycle-global; handle them once, in the
			// same position the legacy loop's first evaluation would.
			for _, node := range cyc.NodesDown {
				o.handleNodeDown(node, cyc.NodeDownSpans[node])
			}
			for _, node := range cyc.NodesRecovered {
				o.handleNodeRecovered(node, cyc.NodeRecoveredSpans[node])
			}
		}
		migrated := 0
		if len(dec.Migrate) > 0 {
			o.buildAssignment(s)
			for _, comp := range dec.Migrate {
				if o.migrateFast(s, comp, dec.CandidateSpans[comp]) {
					migrated++
				}
			}
		}
		o.evaluations = append(o.evaluations, EvaluationRecord{
			At:         o.eng.Now(),
			Violating:  len(s.report.Violating),
			Candidates: len(s.report.Candidates),
			Migrated:   migrated,
		})
	}
	o.ctrl.FinishCycle()
	// Capacity can return without a node-recovery transition (e.g. another
	// app released resources): give queued components a chance every cycle.
	o.drainFailoverQueue()
}

// buildAssignment refreshes the app's component→node map from the cluster.
// Called only when the app has migrations to commit, against post-evacuation
// placement state.
func (o *Orchestrator) buildAssignment(s *appEvalScratch) {
	clear(s.assignment)
	for _, c := range s.comps {
		if node := o.clus.NodeOf(s.app.name, c); node != "" {
			s.assignment[c] = node
		}
	}
}

// cycleNodeInfos returns the scheduler's node view for the current cycle,
// rebuilding the reused snapshot only after something changed it (cycle
// start, cordon/uncordon, any committed placement).
func (o *Orchestrator) cycleNodeInfos() []scheduler.NodeInfo {
	if o.cycleNodesDirty {
		o.cycleNodes = o.appendNodeInfos(o.cycleNodes[:0])
		o.cycleNodesDirty = false
	}
	return o.cycleNodes
}

// schedPool adapts the eval pool to the scheduler's Parallel interface; a
// typed nil inside a non-nil interface would defeat the scheduler's nil
// check, hence the explicit branch.
func (o *Orchestrator) schedPool() scheduler.Parallel {
	if o.evalPool == nil {
		return nil
	}
	return o.evalPool
}

// migrateFast is migrate against the cycle's reused assignment and node
// snapshot, with candidate scoring chunked across the eval pool.
func (o *Orchestrator) migrateFast(s *appEvalScratch, comp string, cause uint64) bool {
	o.ctrlTargetScans++
	app := s.app
	target, err := scheduler.ChooseMigrationTargetPooled(
		app.graph, comp, s.assignment, o.cycleNodeInfos(), o.pathSpareFn,
		o.ctrl.Config().Migration, o.recorder(app.name, cause), o.schedPool(),
	)
	if err != nil {
		o.ctrl.RecordMigrationFailure(comp)
		o.plane.Emit(obs.Event{Type: obs.EventMigrationRejected, App: app.name,
			Component: comp, Cause: cause, Reason: "no feasible target: " + err.Error()})
		return false
	}
	from := s.assignment[comp]
	if err := o.clus.Move(app.name, comp, target); err != nil {
		o.ctrl.RecordMigrationFailure(comp)
		o.plane.Emit(obs.Event{Type: obs.EventMigrationRejected, App: app.name,
			Component: comp, To: target, Cause: cause, Reason: "commit failed: " + err.Error()})
		return false
	}
	s.assignment[comp] = target
	o.cycleNodesDirty = true
	o.commitMigration(app, comp, from, target, cause)
	return true
}

// notePathQueryErrors accounts dependency edges dropped from an evaluation
// because the monitor could not answer a path query (down nodes, partitioned
// mesh). The controller still runs on the edges it can see; the counter and
// metric make the blind spots visible instead of silent.
func (o *Orchestrator) notePathQueryErrors(n int) {
	if n <= 0 {
		return
	}
	o.pathQueryErrs += uint64(n)
	if o.plane.Enabled() {
		o.plane.Metric(obs.MetricPathQueryErrors, float64(o.pathQueryErrs))
	}
}

// PathQueryErrors reports the cumulative count of dependency edges dropped
// from controller evaluations by unanswerable path queries.
func (o *Orchestrator) PathQueryErrors() uint64 { return o.pathQueryErrs }

// ControlStats summarises control-plane work since bootstrap.
type ControlStats struct {
	// Cycles counts controller epochs run.
	Cycles int
	// AppEvaluations counts per-application evaluations across all cycles.
	AppEvaluations int
	// TargetScans counts migration-target searches — each is one
	// O(nodes × deps) candidate-scoring pass, the loop the hot path
	// parallelises. Attempts count whether or not a feasible target emerged.
	TargetScans int
	// WallNS is real wall-clock time spent inside control cycles.
	WallNS int64
	// PathQueryErrors mirrors PathQueryErrors().
	PathQueryErrors uint64
}

// ControlStats reports control-plane work counters (the benchmark harness's
// decisions/sec numerator and denominator).
func (o *Orchestrator) ControlStats() ControlStats {
	return ControlStats{
		Cycles:          o.ctrlCycles,
		AppEvaluations:  o.ctrlAppEvals,
		TargetScans:     o.ctrlTargetScans,
		WallNS:          o.ctrlWallNS,
		PathQueryErrors: o.pathQueryErrs,
	}
}
