package core

import (
	"fmt"
	"math/rand"
	"time"

	"bass/internal/cluster"
	"bass/internal/obs"
	"bass/internal/reconcile"
	"bass/internal/scheduler"
	"bass/internal/simnet"
)

// reconcileHost adapts the orchestrator to the reconciler's Host interface:
// the cluster is the observed state, the controller is the health oracle, and
// placements run through the same scheduler/cluster/workload machinery the
// reactive failover path uses — one placement implementation, two drivers.
type reconcileHost struct{ o *Orchestrator }

func (h reconcileHost) Now() time.Duration { return h.o.eng.Now() }

func (h reconcileHost) Rand() *rand.Rand { return h.o.eng.Rand() }

func (h reconcileHost) After(d time.Duration, fn func()) { h.o.eng.After(d, fn) }

func (h reconcileHost) ObservedNode(app, component string) string {
	return h.o.clus.NodeOf(app, component)
}

func (h reconcileHost) ObservedComponents(app string) []string {
	return h.o.clus.AppComponents(app)
}

func (h reconcileHost) NodeHealthy(node string) bool {
	if node == "" {
		return false
	}
	if _, err := h.o.clus.Node(node); err != nil {
		return false
	}
	return !h.o.clus.Cordoned(node) && !h.o.ctrl.NodeDown(node)
}

func (h reconcileHost) NodeDownCause(node string) uint64 {
	return h.o.nodeDownSpan[node]
}

// Place converges one component. Idempotent by construction: a component
// already on a healthy node succeeds without side effects, so double
// placement is structurally impossible whatever path resolved it first. The
// ladder rung picks the scheduler's strictness — RungMigrate insists on a
// bandwidth-feasible target, later rungs accept the best partially-feasible
// node and let the data plane re-route.
func (h reconcileHost) Place(a reconcile.Action) (string, error) {
	o := h.o
	app, ok := o.apps[a.App]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownApp, a.App)
	}
	comp, err := app.graph.Component(a.Component)
	if err != nil {
		return "", err
	}
	if node := o.clus.NodeOf(a.App, a.Component); node != "" {
		if h.NodeHealthy(node) {
			return node, nil
		}
		// Still sitting on an unhealthy node: evacuate, then re-place.
		if rerr := o.clus.Remove(a.App, a.Component); rerr != nil {
			return "", rerr
		}
	}
	assignment := make(scheduler.Assignment)
	for _, c := range app.graph.Components() {
		if node := o.clus.NodeOf(a.App, c); node != "" {
			assignment[c] = node
		}
	}
	pathAvail := func(x, y string) float64 {
		spare, networked, perr := o.monitor.PathSpareMbps(x, y)
		if perr != nil {
			return 0
		}
		if !networked {
			return simnet.LocalMbps
		}
		return spare
	}
	var target string
	if a.Rung == reconcile.RungMigrate {
		target, err = scheduler.ChooseFailoverTargetStrict(
			app.graph, a.Component, assignment, o.nodeInfos(), pathAvail,
			o.ctrl.Config().Migration, o.recorder(a.App, a.Cause))
	} else {
		target, err = scheduler.ChooseFailoverTargetExplained(
			app.graph, a.Component, assignment, o.nodeInfos(), pathAvail,
			o.ctrl.Config().Migration, o.recorder(a.App, a.Cause))
	}
	if err != nil {
		return "", err
	}
	if perr := o.clus.Place(cluster.Placement{
		App:       a.App,
		Component: a.Component,
		Node:      target,
		CPU:       comp.CPU,
		MemoryMB:  comp.MemoryMB,
	}); perr != nil {
		return "", perr
	}
	o.failovers = append(o.failovers, FailoverEvent{
		At:        o.eng.Now(),
		App:       a.App,
		Component: a.Component,
		From:      a.FromNode,
		To:        target,
		Attempts:  a.Attempt,
		FromQueue: a.Rung >= reconcile.RungShed,
	})
	mttr := o.eng.Now() + o.cfg.MigrationDowntime - a.DriftedAt
	o.mttrs = append(o.mttrs, mttr)
	if o.plane.Enabled() {
		o.plane.Metric(obs.MetricFailoverMTTR, mttr.Seconds(),
			"app", a.App, "component", a.Component)
	}
	// Flows the workload re-opens cite the drift that forced the move.
	o.net.SetCause(a.Cause)
	app.workload.OnMigration(app.env, a.Component, a.FromNode, target, o.cfg.MigrationDowntime)
	o.net.SetCause(0)
	return target, nil
}

func (h reconcileHost) Evict(appName, component string, cause uint64) error {
	if err := h.o.clus.Remove(appName, component); err != nil {
		return err
	}
	h.o.plane.Emit(obs.Event{Type: obs.EventEvacuate, App: appName,
		Component: component, Cause: cause, Reason: "undesired placement evicted"})
	return nil
}

// Shed tears an application down: every placement removed, every flow with
// the app's tag prefix dropped from the data plane. The spec stays registered
// so the reconciler can restore the app later; the workload's OnMigration
// callbacks re-create its flows against the restored placement.
func (h reconcileHost) Shed(appName string, cause uint64) {
	o := h.o
	app, ok := o.apps[appName]
	if !ok {
		return
	}
	for _, comp := range app.graph.Components() { // sorted: deterministic
		if o.clus.NodeOf(appName, comp) != "" {
			_ = o.clus.Remove(appName, comp)
		}
	}
	o.net.SetCause(cause)
	// Matching is boundary-aware in simnet: the bare app name sheds "app" and
	// "app/..." tags but never a sibling like "app10" — no trailing "/" is
	// needed here to stay collision-safe.
	o.net.ShedFlowsByTagPrefix(appName)
	o.net.SetCause(0)
}
