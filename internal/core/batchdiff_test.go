package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
	"bass/internal/scheduler"
)

// batchDiffRun executes a storm-loaded multi-app simulation with
// observability attached, with or without the batch placement mode, and
// returns the journal JSONL and the Prometheus metric dump. moveBudget only
// applies when batch is true; a negative budget is the zero-move search the
// differential below pins against greedy.
func batchDiffRun(t *testing.T, seed int64, polling, batch bool, moveBudget int) (journal, metrics []byte) {
	t.Helper()
	const rows, cols, apps = 6, 6, 12
	topo, err := mesh.Grid(mesh.GridOptions{Rows: rows, Cols: cols, Seed: seed, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	n := rows * cols
	nodes := make([]cluster.Node, 0, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nodes = append(nodes, cluster.Node{Name: mesh.GridNodeName(r, c), CPU: 2, MemoryMB: 16384})
		}
	}
	cfg := Config{
		EnableMigration: true,
		MonitorInterval: 30 * time.Second,
		PollingNet:      polling,
	}
	if batch {
		cfg.BatchPlacement = true
		cfg.Batch = scheduler.BatchConfig{MoveBudget: moveBudget}
	}
	s, err := NewSimulation(topo, nodes, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := obs.NewJournal(0)
	store := metricstore.New(0)
	s.AttachObservability(j, store)
	for i := 0; i < apps; i++ {
		cell := (i * 7) % n
		sr, sc := cell/cols, cell%cols
		name := fmt.Sprintf("chain-%04d", i)
		w := newBenchChain(name, 12, mesh.GridNodeName(sr, sc), mesh.GridNodeName((sr+2)%rows, (sc+1)%cols))
		if _, err := s.Orch.Deploy(name, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var jb, mb bytes.Buffer
	if err := j.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), mb.Bytes()
}

// TestBatchZeroBudgetByteIdenticalToGreedy pins the batch mode's containment
// contract: with a zero-move budget (MoveBudget < 0 at the core level) the
// batch-wrapped policy must produce byte-identical journals — including every
// sched_candidate scoreboard row — and metric dumps to the plain greedy path,
// across both net drivers and three seeds. The new mode cannot silently
// perturb existing experiment output.
func TestBatchZeroBudgetByteIdenticalToGreedy(t *testing.T) {
	for _, polling := range []bool{false, true} {
		driver := "event-driven"
		if polling {
			driver = "polling"
		}
		t.Run(driver, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				refJournal, refMetrics := batchDiffRun(t, seed, polling, false, 0)
				if len(refJournal) == 0 {
					t.Fatalf("seed %d: greedy run produced an empty journal", seed)
				}
				gotJournal, gotMetrics := batchDiffRun(t, seed, polling, true, -1)
				if !bytes.Equal(refJournal, gotJournal) {
					t.Errorf("seed %d: zero-budget batch journal differs from greedy", seed)
				}
				if !bytes.Equal(refMetrics, gotMetrics) {
					t.Errorf("seed %d: zero-budget batch metric dump differs from greedy", seed)
				}
			}
		})
	}
}

// TestBatchSearchDeterministicAndVisible pins the other half of the
// contract: with a real budget the search is byte-deterministic (double-run
// identical journals and metrics) and its decisions are visible — ChoiceBatch
// scoreboards reach the journal through the recorder.
func TestBatchSearchDeterministicAndVisible(t *testing.T) {
	for _, polling := range []bool{false, true} {
		driver := "event-driven"
		if polling {
			driver = "polling"
		}
		t.Run(driver, func(t *testing.T) {
			seed := int64(2)
			j1, m1 := batchDiffRun(t, seed, polling, true, 128)
			j2, m2 := batchDiffRun(t, seed, polling, true, 128)
			if !bytes.Equal(j1, j2) {
				t.Error("batch double-run journals differ")
			}
			if !bytes.Equal(m1, m2) {
				t.Error("batch double-run metric dumps differ")
			}
			// The final verdict explanation emits candidate rows for the
			// pseudo-component "joint" — its presence proves ChoiceBatch
			// scoreboards flow through the recorder into the journal.
			if !bytes.Contains(j1, []byte(`"joint"`)) {
				t.Error("batch journal records no ChoiceBatch verdict explanations")
			}
		})
	}
}
