//go:build !race

package core

import (
	"fmt"
	"testing"
)

// The BenchmarkControlPlane family measures one controller epoch — probe
// sweep, per-app evaluation through the path oracle, candidate selection —
// at town (64 nodes) and city (196 nodes) meshes across 1×/10×/100× app
// density, quiet and storm. Cycles are driven directly (no data-plane time
// passes between iterations), so the numbers isolate control-plane cost; the
// committed BENCH_sched.json carries the end-to-end runs, migrations
// included. Excluded from -race runs: AllocsPerRun and timing are both
// meaningless under the race detector.

func benchControlPlane(b *testing.B, rows, cols, apps int, storm bool, workers int) {
	s := setupControlPlane(b, rows, cols, apps, storm, workers)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Orch.controlCycle()
	}
	b.StopTimer()
	if secPerOp := b.Elapsed().Seconds() / float64(b.N); secPerOp > 0 {
		b.ReportMetric(float64(apps)/secPerOp, "decisions/sec")
	}
}

// BenchmarkControlPlane is the town mesh (8×8 = 64 nodes) across densities.
func BenchmarkControlPlane(b *testing.B) {
	for _, d := range []int{1, 10, 100} {
		apps := 8 * d
		for _, load := range []string{"quiet", "storm"} {
			storm := load == "storm"
			b.Run(fmt.Sprintf("town/%dx-%s-serial", d, load), func(b *testing.B) {
				benchControlPlane(b, 8, 8, apps, storm, 0)
			})
			b.Run(fmt.Sprintf("town/%dx-%s-parallel", d, load), func(b *testing.B) {
				benchControlPlane(b, 8, 8, apps, storm, 4)
			})
		}
	}
}

// BenchmarkControlPlaneCity is the city mesh (14×14 = 196 nodes). Separately
// named so CI's bench-smoke can -skip it: at 100× density one setup deploys
// 1400 chains.
func BenchmarkControlPlaneCity(b *testing.B) {
	for _, d := range []int{1, 10, 100} {
		apps := 14 * d
		for _, load := range []string{"quiet", "storm"} {
			storm := load == "storm"
			b.Run(fmt.Sprintf("city/%dx-%s-serial", d, load), func(b *testing.B) {
				benchControlPlane(b, 14, 14, apps, storm, 0)
			})
			b.Run(fmt.Sprintf("city/%dx-%s-parallel", d, load), func(b *testing.B) {
				benchControlPlane(b, 14, 14, apps, storm, 4)
			})
		}
	}
}

// TestQuietEpochZeroAlloc pins the hot path's allocation contract: once the
// mesh is steady and no violations are in flight, a whole controller epoch —
// probe sweep, oracle-backed evaluation of every app, empty candidate
// reports — runs without allocating. The only tolerated source is the
// amortized growth of the evaluations log (one append per app per cycle),
// which stays far below one allocation per epoch on average.
func TestQuietEpochZeroAlloc(t *testing.T) {
	s := setupControlPlane(t, 8, 8, 8, false, 0)
	defer s.Close()
	avg := testing.AllocsPerRun(100, func() {
		s.Orch.controlCycle()
	})
	if avg >= 1 {
		t.Fatalf("quiet controller epoch allocates: %.2f allocs/op, want < 1", avg)
	}
}

// TestQuietEpochZeroAllocParallel is the same contract with the eval pool
// engaged: fan-out over prebuilt task closures must not allocate either.
func TestQuietEpochZeroAllocParallel(t *testing.T) {
	s := setupControlPlane(t, 8, 8, 8, false, 4)
	defer s.Close()
	avg := testing.AllocsPerRun(100, func() {
		s.Orch.controlCycle()
	})
	if avg >= 1 {
		t.Fatalf("quiet parallel epoch allocates: %.2f allocs/op, want < 1", avg)
	}
}

// TestQuietEpochZeroAllocSLO extends the contract to the observed control
// plane: with a journal, a metric store, and the SLO evaluator all attached,
// a quiet epoch — probe sweep, metric emission through pre-resolved handles,
// SLI evaluation, burn-rate checks — still allocates nothing once every ring
// has reached capacity.
func TestQuietEpochZeroAllocSLO(t *testing.T) {
	s := setupControlPlaneObserved(t, 8, 8, 8, false, 0, true)
	defer s.Close()
	// Prefill past every ring cap (store MaxSamples 256, journal 4096) so
	// steady-state appends overwrite instead of growing.
	for i := 0; i < 300; i++ {
		s.Orch.controlCycle()
	}
	avg := testing.AllocsPerRun(100, func() {
		s.Orch.controlCycle()
	})
	if avg >= 1 {
		t.Fatalf("quiet observed epoch allocates: %.2f allocs/op, want < 1", avg)
	}
}
