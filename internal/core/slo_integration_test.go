package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
)

// The SLO differential scenario: a 2×4 ladder mesh with four chains pinned
// along each row. Killing row 0's middle link reroutes its traffic through
// row 1, overcommitting the surviving middle link (~40 Mbps of demand on a
// 25 Mbps link) — goodput and headroom SLIs both go bad for the fault
// window, so alerts must fire and later resolve.
func runSLOScenario(t *testing.T, seed int64, polling bool, workers int) (*obs.Journal, []obs.Event) {
	t.Helper()
	rows, cols := 2, 4
	topo := staticGrid(rows, cols, 25)
	var nodes []cluster.Node
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nodes = append(nodes, cluster.Node{Name: mesh.GridNodeName(r, c), CPU: 2, MemoryMB: 16384})
		}
	}
	s, err := NewSimulation(topo, nodes, seed, Config{
		EnableMigration: true,
		MonitorInterval: 30 * time.Second,
		PollingNet:      polling,
		EvalWorkers:     workers,
		EnableSLO:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	journal := obs.NewJournal(0)
	s.AttachObservability(journal, metricstore.New(0))
	for r := 0; r < rows; r++ {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("chain-r%d-%d", r, i)
			w := newBenchChain(name, 5, mesh.GridNodeName(r, 0), mesh.GridNodeName(r, cols-1))
			if _, err := s.Orch.Deploy(name, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 600, Type: faults.LinkDown, LinkA: mesh.GridNodeName(0, 1), LinkB: mesh.GridNodeName(0, 2)},
		{AtSec: 1200, Type: faults.LinkUp, LinkA: mesh.GridNodeName(0, 1), LinkB: mesh.GridNodeName(0, 2)},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var alerts []obs.Event
	for _, ev := range journal.Events() {
		if ev.Type == obs.EventAlertFired || ev.Type == obs.EventAlertResolved {
			alerts = append(alerts, ev)
		}
	}
	return journal, alerts
}

// alertBytes serialises the alert sub-journal for byte comparison.
func alertBytes(t *testing.T, alerts []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range alerts {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSLOAlertJournalDifferential pins the determinism half of the SLO
// contract: at equal seeds the alert journal is byte-identical across both
// net drivers and any EvalWorkers count — and alerts actually fire during
// the injected fault window and resolve after it.
func TestSLOAlertJournalDifferential(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		_, base := runSLOScenario(t, seed, false, 0)
		fired, resolved := 0, 0
		for _, ev := range base {
			switch ev.Type {
			case obs.EventAlertFired:
				fired++
			case obs.EventAlertResolved:
				resolved++
			}
		}
		if fired == 0 {
			t.Fatalf("seed %d: no alerts fired during fault window", seed)
		}
		if resolved == 0 {
			t.Fatalf("seed %d: no alerts resolved after recovery", seed)
		}
		want := alertBytes(t, base)
		for _, v := range []struct {
			polling bool
			workers int
		}{{false, 4}, {true, 0}, {true, 4}} {
			_, alerts := runSLOScenario(t, seed, v.polling, v.workers)
			if got := alertBytes(t, alerts); !bytes.Equal(got, want) {
				t.Errorf("seed %d polling=%v workers=%d: alert journal diverged\nwant:\n%s\ngot:\n%s",
					seed, v.polling, v.workers, want, got)
			}
		}
	}
}

// TestSLOAlertCauseChains pins the explainability half: every alert_fired in
// a fault-driven run carries a cause chain whose root is ground truth — a
// probe observation, a headroom violation verdict, or the injected fault
// itself. This is the invariant the CI slo-smoke job gates with bass-trace.
func TestSLOAlertCauseChains(t *testing.T) {
	journal, alerts := runSLOScenario(t, 42, false, 0)
	events := journal.Events()
	checked := 0
	for _, ev := range alerts {
		if ev.Type != obs.EventAlertFired {
			continue
		}
		checked++
		if ev.Cause == 0 {
			t.Errorf("alert %q (%s) has no cause", ev.SLO, ev.Reason)
			continue
		}
		chain := obs.CauseChain(events, ev.Span)
		if len(chain) < 2 {
			t.Errorf("alert %q: cause chain did not resolve (%d events)", ev.SLO, len(chain))
			continue
		}
		switch root := chain[len(chain)-1]; root.Type {
		case obs.EventProbeFull, obs.EventProbeHeadroom, obs.EventProbeError,
			obs.EventHeadroomViolation, obs.EventFault:
			// ground truth — good
		default:
			t.Errorf("alert %q: chain roots at %s, want a probe/violation/fault", ev.SLO, root.Type)
		}
	}
	if checked == 0 {
		t.Fatal("scenario fired no alerts to check")
	}
}

// TestSLOAutoRegisteredSpecs pins the wiring: EnableSLO registers the mesh
// headroom and control-latency specs at attach, and a goodput spec per
// deployed app.
func TestSLOAutoRegisteredSpecs(t *testing.T) {
	s := setupControlPlaneObserved(t, 2, 2, 2, false, 0, true)
	defer s.Close()
	ev := s.Orch.SLO()
	if ev == nil {
		t.Fatal("EnableSLO did not build an evaluator")
	}
	want := map[string]bool{
		"mesh/headroom":      false,
		"control/loop":       false,
		"goodput/chain-0000": false,
		"goodput/chain-0001": false,
	}
	for _, st := range ev.Snapshot() {
		if _, ok := want[st.Name]; ok {
			want[st.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("spec %q not auto-registered", name)
		}
	}
}
