package core

import (
	"testing"
	"time"

	"bass/internal/dag"
	"bass/internal/scheduler"
)

// statefulPair is a pairWorkload whose consumer carries migratable state.
func statefulPair(app string, demand float64, pinSrc string, cpu, stateMB float64) *pairWorkload {
	w := newPairWorkload(app, demand, pinSrc, cpu)
	c, err := w.graph.Component("dst")
	if err != nil {
		panic(err)
	}
	c.StateMB = stateMB
	return w
}

// runFig8Style runs the Fig 8 scenario with the given workload and returns
// the time the pair's stream was down around the first migration.
func downtimeAroundFirstMigration(t *testing.T, w *pairWorkload) time.Duration {
	t.Helper()
	const dropAt = 120 * time.Second
	topo := fig8Topology(dropAt)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy:            scheduler.NewBass(scheduler.HeuristicBFS),
		EnableMigration:   true,
		MonitorInterval:   30 * time.Second,
		MigrationDowntime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(dropAt + 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	migs := sim.Orch.Migrations()
	if len(migs) == 0 {
		t.Fatal("no migration occurred")
	}
	// The stream detaches at migration time and re-attaches after the
	// downtime; measure by probing when the stream was re-added.
	if !w.attached {
		t.Fatal("stream never re-attached")
	}
	return w.lastDowntime
}

func TestStatefulMigrationTakesLonger(t *testing.T) {
	stateless := newPairWorkload("pair", 8, "node3", 2)
	statelessDown := downtimeAroundFirstMigration(t, stateless)

	stateful := statefulPair("pair", 8, "node3", 2, 200) // 200 MB of state
	statefulDown := downtimeAroundFirstMigration(t, stateful)

	if statefulDown <= statelessDown {
		t.Errorf("stateful downtime %v not above stateless %v", statefulDown, statelessDown)
	}
	// 200 MB over a ≤20 Mbps path is at least 80 s of transfer.
	if statefulDown < time.Minute {
		t.Errorf("stateful downtime %v implausibly short for 200 MB", statefulDown)
	}
}

// profiledWorkload under-declares its edge requirement, then streams much
// more; online profiling must raise the DAG weight.
func TestOnlineProfilingRaisesRequirements(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy:          scheduler.NewBass(scheduler.HeuristicBFS),
		EnableMigration: true, // the controller loop drives profiling
		MonitorInterval: 30 * time.Second,
		OnlineProfiling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	// Declared 1 Mbps; actual traffic 10 Mbps.
	w := newPairWorkload("pair", 1, "node3", 2)
	w.demand = 10
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	got := w.graph.Weight("src", "dst")
	if got < 10 {
		t.Errorf("profiled requirement = %.1f Mbps, want ≥ observed 10", got)
	}
	peak := sim.Orch.EdgePeakMbps("pair", "src", "dst")
	if peak < 9.9 {
		t.Errorf("edge peak = %.1f, want ≈10", peak)
	}
}

func TestOnlineProfilingDisabledKeepsDeclared(t *testing.T) {
	topo := fig8Topology(time.Hour)
	sim, err := NewSimulation(topo, fig8Nodes(), 1, Config{
		Policy:          scheduler.NewBass(scheduler.HeuristicBFS),
		EnableMigration: true,
		MonitorInterval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	w := newPairWorkload("pair", 1, "node3", 2)
	w.demand = 10
	if _, err := sim.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := w.graph.Weight("src", "dst"); got != 1 {
		t.Errorf("requirement changed to %.1f with profiling disabled", got)
	}
}

func TestSetWeightOnGraph(t *testing.T) {
	g := dag.NewGraph("x")
	g.MustAddComponent(dag.Component{Name: "a"})
	g.MustAddComponent(dag.Component{Name: "b"})
	g.MustAddEdge("a", "b", 1)
	if err := g.SetWeight("a", "b", 7); err != nil {
		t.Fatal(err)
	}
	if got := g.Weight("a", "b"); got != 7 {
		t.Errorf("weight = %v", got)
	}
	if err := g.SetWeight("b", "a", 1); err == nil {
		t.Error("missing edge: want error")
	}
	if err := g.SetWeight("a", "b", -1); err == nil {
		t.Error("negative weight: want error")
	}
}
