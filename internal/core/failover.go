package core

import (
	"sort"
	"time"

	"bass/internal/cluster"
	"bass/internal/obs"
	"bass/internal/reconcile"
	"bass/internal/scheduler"
	"bass/internal/simnet"
)

// DetectionRecord logs one node-down verdict from the controller.
type DetectionRecord struct {
	Node       string
	DetectedAt time.Duration
	// Components is how many placed components were stranded on the node.
	Components int
}

// FailoverEvent records one component successfully re-placed after its host
// was declared down.
type FailoverEvent struct {
	At        time.Duration
	App       string
	Component string
	From, To  string
	// Attempts is how many placement attempts it took (1 = first try).
	Attempts int
	// FromQueue marks components that exhausted their retries and waited in
	// the recovery queue until capacity returned.
	FromQueue bool
}

// RecoveryReport summarises failure handling over a run.
type RecoveryReport struct {
	Detections []DetectionRecord
	Failovers  []FailoverEvent
	// QueuedNow counts components still waiting for capacity at report time.
	QueuedNow int
	// MTTRMean and MTTRMax measure detection→service-restored per failover:
	// the time from the node-down verdict until the component finished
	// restarting on its new host (re-placement plus restart downtime). Time
	// between the actual crash and its detection is not included — the
	// control plane cannot observe it; add the detector's worst case
	// (FailureThreshold × MonitorInterval) for crash-to-recovery bounds.
	MTTRMean time.Duration
	MTTRMax  time.Duration
}

// pendingFailover is one stranded component working through placement
// retries.
type pendingFailover struct {
	app        string
	component  string
	fromNode   string
	detectedAt time.Duration
	attempts   int
	// cause is the span of the evacuate event that stranded the component;
	// every placement attempt, queue entry, and the final failover event
	// chain back through it to the node-down verdict and its probe errors.
	cause uint64
}

// handleNodeDown reacts to a controller node-down verdict: cordon the node so
// nothing new lands there, evacuate every placement it held (across all
// apps, in deterministic order), and start re-placing each component.
// Components that cannot be placed anywhere are queued until capacity
// returns. Untouched components keep serving throughout — only flows that
// crossed the dead node were disturbed, and the network already handled
// those.
func (o *Orchestrator) handleNodeDown(node string, cause uint64) {
	now := o.eng.Now()
	if err := o.clus.Cordon(node); err != nil {
		return // unknown to the cluster: nothing placed there
	}
	o.cycleNodesDirty = true // cordon + evacuations change the node snapshot
	cordonSpan := o.plane.EmitSpan(obs.Event{Type: obs.EventCordon, Node: node,
		Cause: cause, Reason: "node-down verdict"})
	var stranded []pendingFailover
	for _, appName := range o.appOrder {
		for _, comp := range o.clus.ComponentsOn(appName, node) { // sorted
			if err := o.clus.Remove(appName, comp); err != nil {
				continue
			}
			evacSpan := o.plane.EmitSpan(obs.Event{Type: obs.EventEvacuate,
				App: appName, Component: comp, Node: node, Cause: cordonSpan})
			stranded = append(stranded, pendingFailover{
				app:        appName,
				component:  comp,
				fromNode:   node,
				detectedAt: now,
				cause:      evacSpan,
			})
		}
	}
	o.detections = append(o.detections, DetectionRecord{
		Node: node, DetectedAt: now, Components: len(stranded),
	})
	if o.rec != nil {
		// Reconcile mode: the evacuation becomes drift. The reconciler owns
		// re-placement — retry budgets, the degraded-mode ladder, and the
		// convergence bookkeeping — so the one-shot retry path stays idle.
		o.nodeDownSpan[node] = cause
		for i := range stranded {
			p := stranded[i]
			o.rec.NoteDrift(p.app, p.component, reconcile.DriftDeadNode, p.fromNode, p.cause)
		}
		return
	}
	for i := range stranded {
		p := stranded[i]
		o.tryFailover(&p)
	}
}

// handleNodeRecovered reopens a node the controller saw answering probes
// again and immediately retries the recovery queue: the returning capacity is
// exactly what queued components were waiting for.
func (o *Orchestrator) handleNodeRecovered(node string, cause uint64) {
	if err := o.clus.Uncordon(node); err != nil {
		return
	}
	o.cycleNodesDirty = true
	o.plane.Emit(obs.Event{Type: obs.EventUncordon, Node: node,
		Cause: cause, Reason: "node recovered"})
	if o.rec != nil {
		// Returning capacity is what backed-off drift is waiting for: scan
		// now instead of waiting out retry delays or the epoch.
		delete(o.nodeDownSpan, node)
		o.rec.Kick()
		return
	}
	o.drainFailoverQueue()
}

// tryFailover attempts to re-place one stranded component. Placement failures
// retry with exponential backoff (base × 2^attempt, capped, jittered ±frac
// from the engine's seeded RNG so retries de-synchronize without breaking the
// equal-seeds-byte-identical contract) up to the configured attempt budget,
// then park in the recovery queue.
func (o *Orchestrator) tryFailover(p *pendingFailover) {
	app, ok := o.apps[p.app]
	if !ok {
		return
	}
	p.attempts++
	if o.placeFailover(app, p) {
		return
	}
	if p.attempts >= o.cfg.FailoverMaxRetries {
		o.failoverQueue = append(o.failoverQueue, p)
		o.plane.Emit(obs.Event{Type: obs.EventFailoverQueued, App: p.app, Component: p.component,
			From: p.fromNode, Cause: p.cause,
			Reason: "placement retries exhausted; waiting for capacity",
			Value:  float64(p.attempts)})
		return
	}
	delay := reconcile.Backoff(o.cfg.FailoverBackoffBase, o.cfg.FailoverBackoffMax,
		o.cfg.FailoverBackoffJitter, p.attempts, o.eng.Rand())
	o.eng.After(delay, func() { o.tryFailover(p) })
}

// placeFailover runs the failover target choice and commits the placement,
// reporting success.
func (o *Orchestrator) placeFailover(app *deployedApp, p *pendingFailover) bool {
	comp, err := app.graph.Component(p.component)
	if err != nil {
		return true // component no longer in the graph: drop silently
	}
	if o.clus.NodeOf(app.name, p.component) != "" {
		// Already placed by another path — a queue drain racing a backoff
		// retry, or the node recovering mid-evacuation. Treat as resolved:
		// retrying would double-place and leak the pending record.
		return true
	}
	assignment := make(scheduler.Assignment)
	for _, c := range app.graph.Components() {
		if node := o.clus.NodeOf(app.name, c); node != "" {
			assignment[c] = node
		}
	}
	target, err := scheduler.ChooseFailoverTargetExplained(
		app.graph, p.component, assignment, o.nodeInfos(),
		func(a, b string) float64 {
			spare, networked, perr := o.monitor.PathSpareMbps(a, b)
			if perr != nil {
				return 0
			}
			if !networked {
				return simnet.LocalMbps
			}
			return spare
		},
		o.ctrl.Config().Migration,
		o.recorder(app.name, p.cause),
	)
	if err != nil {
		return false
	}
	if err := o.clus.Place(cluster.Placement{
		App:       app.name,
		Component: p.component,
		Node:      target,
		CPU:       comp.CPU,
		MemoryMB:  comp.MemoryMB,
	}); err != nil {
		return false
	}
	o.cycleNodesDirty = true
	o.failovers = append(o.failovers, FailoverEvent{
		At:        o.eng.Now(),
		App:       app.name,
		Component: p.component,
		From:      p.fromNode,
		To:        target,
		Attempts:  p.attempts,
		FromQueue: p.attempts > o.cfg.FailoverMaxRetries,
	})
	mttr := o.eng.Now() + o.cfg.MigrationDowntime - p.detectedAt
	o.mttrs = append(o.mttrs, mttr)
	reason := "re-placed after node failure"
	if p.attempts > o.cfg.FailoverMaxRetries {
		reason = "re-placed from recovery queue"
	}
	foSpan := o.plane.EmitSpan(obs.Event{Type: obs.EventFailover, App: app.name, Component: p.component,
		From: p.fromNode, To: target, Cause: p.cause, Reason: reason, Value: float64(p.attempts)})
	if o.plane.Enabled() {
		o.plane.Metric(obs.MetricFailoverMTTR, mttr.Seconds(),
			"app", app.name, "component", p.component)
	}
	// The component restarts cold on the new node; state on the dead host is
	// unreachable, so only the restart cost applies — never a state transfer.
	// Flows the workload re-opens cite the failover.
	o.net.SetCause(foSpan)
	app.workload.OnMigration(app.env, p.component, p.fromNode, target, o.cfg.MigrationDowntime)
	o.net.SetCause(0)
	return true
}

// drainFailoverQueue retries every queued component once, keeping those that
// still do not fit. Queue order is arrival order, so draining is
// deterministic.
func (o *Orchestrator) drainFailoverQueue() {
	if len(o.failoverQueue) == 0 {
		return
	}
	queue := o.failoverQueue
	o.failoverQueue = o.failoverQueue[:0]
	for _, p := range queue {
		app, ok := o.apps[p.app]
		if !ok {
			continue
		}
		p.attempts++
		if !o.placeFailover(app, p) {
			o.failoverQueue = append(o.failoverQueue, p)
		}
	}
}

// RecoveryReport summarises detections, failovers, and the current queue.
func (o *Orchestrator) RecoveryReport() RecoveryReport {
	r := RecoveryReport{
		Detections: append([]DetectionRecord(nil), o.detections...),
		Failovers:  append([]FailoverEvent(nil), o.failovers...),
		QueuedNow:  len(o.failoverQueue),
	}
	if len(o.mttrs) > 0 {
		var sum time.Duration
		for _, d := range o.mttrs {
			sum += d
			if d > r.MTTRMax {
				r.MTTRMax = d
			}
		}
		r.MTTRMean = sum / time.Duration(len(o.mttrs))
	}
	return r
}

// Failovers returns the failover log.
func (o *Orchestrator) Failovers() []FailoverEvent {
	out := make([]FailoverEvent, len(o.failovers))
	copy(out, o.failovers)
	return out
}

// Detections returns the node-down detection log.
func (o *Orchestrator) Detections() []DetectionRecord {
	out := make([]DetectionRecord, len(o.detections))
	copy(out, o.detections)
	return out
}

// QueuedFailovers lists components currently waiting for capacity, sorted.
func (o *Orchestrator) QueuedFailovers() []string {
	out := make([]string, 0, len(o.failoverQueue))
	for _, p := range o.failoverQueue {
		out = append(out, p.app+"/"+p.component)
	}
	sort.Strings(out)
	return out
}
