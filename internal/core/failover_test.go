package core

import (
	"reflect"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/faults"
	"bass/internal/mesh"
)

// chaosSim builds a full-mesh simulation with failure detection armed: the
// controller loop runs every interval and declares a node down after
// threshold consecutive failed sweeps of all its links.
func chaosSim(t *testing.T, nodes []cluster.Node, cfg Config) *Simulation {
	t.Helper()
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	topo := mesh.FullMesh(names, 25, time.Millisecond, time.Hour)
	cfg.EnableMigration = true
	if cfg.MonitorInterval == 0 {
		cfg.MonitorInterval = 30 * time.Second
	}
	if cfg.MigrationDowntime == 0 {
		cfg.MigrationDowntime = 2 * time.Second
	}
	s, err := NewSimulation(topo, nodes, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fourNodes() []cluster.Node {
	return []cluster.Node{
		{Name: "n1", CPU: 4, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
		{Name: "n3", CPU: 4, MemoryMB: 4096},
		{Name: "n4", CPU: 4, MemoryMB: 4096},
	}
}

// TestNodeCrashDetectedAndFailedOver is the PR's acceptance scenario: a node
// crash mid-run is detected within K monitoring intervals, every component on
// the dead node is re-placed on a survivor, the workload's traffic resumes,
// and recovery metrics cover the episode.
func TestNodeCrashDetectedAndFailedOver(t *testing.T) {
	// n1 (CPU 3) can hold the pinned src (CPU 2) but not both components, so
	// dst lands cross-node.
	nodes := fourNodes()
	nodes[0].CPU = 3
	s := chaosSim(t, nodes, Config{})
	defer s.Close()
	w := newPairWorkload("pair", 8, "n1", 2)
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	victim := assignment["dst"]
	srcNode := assignment["src"]
	if victim == srcNode {
		t.Fatalf("pair co-located on %q; scenario needs a cross-node pair", victim)
	}

	const crashAt = 60 * time.Second
	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: crashAt.Seconds(), Type: faults.NodeCrash, Node: victim},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	report := s.Orch.RecoveryReport()
	if len(report.Detections) != 1 || report.Detections[0].Node != victim {
		t.Fatalf("detections = %+v, want one for %q", report.Detections, victim)
	}
	det := report.Detections[0]
	// K=3 failed sweeps after the crash, plus one interval of slack for sweep
	// phase alignment.
	interval := s.Orch.cfg.MonitorInterval
	threshold := s.Orch.ctrl.Config().FailureThreshold
	if maxDetect := crashAt + time.Duration(threshold+1)*interval; det.DetectedAt > maxDetect {
		t.Errorf("detected at %v, want within %v", det.DetectedAt, maxDetect)
	}
	if det.DetectedAt <= crashAt {
		t.Errorf("detected at %v, before the crash at %v", det.DetectedAt, crashAt)
	}

	if len(report.Failovers) != 1 {
		t.Fatalf("failovers = %+v, want exactly one (dst)", report.Failovers)
	}
	fo := report.Failovers[0]
	if fo.Component != "dst" || fo.From != victim || fo.To == victim {
		t.Errorf("failover = %+v", fo)
	}
	if got := s.Cluster.NodeOf("pair", "dst"); got == victim || got == "" {
		t.Errorf("dst now on %q", got)
	}
	// The untouched component never moved.
	if got := s.Cluster.NodeOf("pair", "src"); got != srcNode {
		t.Errorf("src moved to %q during dst's failover", got)
	}
	if report.MTTRMean <= 0 || report.MTTRMax < report.MTTRMean {
		t.Errorf("MTTR mean=%v max=%v", report.MTTRMean, report.MTTRMax)
	}
	if report.QueuedNow != 0 {
		t.Errorf("QueuedNow = %d", report.QueuedNow)
	}

	// Traffic resumed at full demand on the new placement.
	if !w.attached {
		t.Fatal("workload stream not re-attached after failover")
	}
	rate, err := s.Net.StreamRate(w.stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8 {
		t.Errorf("post-failover stream rate = %v, want 8", rate)
	}
}

// TestFailoverQueuesUntilCapacityReturns exhausts placement retries (no
// surviving node fits the component) and checks the component waits in the
// recovery queue, then lands as soon as the crashed node returns.
func TestFailoverQueuesUntilCapacityReturns(t *testing.T) {
	nodes := []cluster.Node{
		{Name: "n1", CPU: 4, MemoryMB: 4096},
		{Name: "n2", CPU: 4, MemoryMB: 4096},
		{Name: "n3", CPU: 1, MemoryMB: 512}, // too small for a CPU-4 component
	}
	s := chaosSim(t, nodes, Config{
		FailoverMaxRetries:  2,
		FailoverBackoffBase: 5 * time.Second,
	})
	defer s.Close()
	w := newPairWorkload("pair", 8, "", 4) // CPU 4: exactly one per big node
	assignment, err := s.Orch.Deploy("pair", w)
	if err != nil {
		t.Fatal(err)
	}
	victim := assignment["dst"]

	sched := &faults.Schedule{Events: []faults.Event{
		{AtSec: 60, Type: faults.NodeCrash, Node: victim},
		{AtSec: 360, Type: faults.NodeRecover, Node: victim},
	}}
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}

	// Mid-outage: retries exhausted, component parked in the queue.
	s.Eng.At(300*time.Second, func() {
		if q := s.Orch.QueuedFailovers(); len(q) != 1 || q[0] != "pair/dst" {
			t.Errorf("at 300s queue = %v, want [pair/dst]", q)
		}
		if s.Cluster.NodeOf("pair", "dst") != "" {
			t.Error("dst placed mid-outage despite nowhere to fit")
		}
	})
	if err := s.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}

	report := s.Orch.RecoveryReport()
	if report.QueuedNow != 0 {
		t.Fatalf("still queued at end: %v", s.Orch.QueuedFailovers())
	}
	if len(report.Failovers) != 1 {
		t.Fatalf("failovers = %+v", report.Failovers)
	}
	fo := report.Failovers[0]
	if !fo.FromQueue {
		t.Errorf("failover %+v should have come from the queue", fo)
	}
	if fo.To != victim {
		t.Errorf("dst re-placed on %q, want the recovered %q (only node that fits)", fo.To, victim)
	}
	if got := s.Cluster.NodeOf("pair", "dst"); got != victim {
		t.Errorf("dst on %q at end", got)
	}
}

// chaosRun executes one full generated-chaos run and returns its observable
// outcome.
func chaosRun(t *testing.T) (RecoveryReport, []MigrationEvent, []cluster.Placement, int) {
	t.Helper()
	s := chaosSim(t, fourNodes(), Config{})
	defer s.Close()
	w := newPairWorkload("pair", 8, "", 2)
	if _, err := s.Orch.Deploy("pair", w); err != nil {
		t.Fatal(err)
	}
	sched := faults.Generate(s.Topo, faults.GeneratorConfig{
		Seed:               42,
		Horizon:            20 * time.Minute,
		NodeCrashesPerHour: 4,
		MeanNodeDowntime:   3 * time.Minute,
		LinkFlapsPerHour:   4,
	})
	if _, err := s.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return s.Orch.RecoveryReport(), s.Orch.Migrations(), s.Cluster.Placements(), s.Net.FailedTransfers()
}

// TestChaosRunsAreDeterministic re-runs an identical generated fault storm
// and requires identical recovery reports, migration logs, and final
// placements — PR 1's determinism contract extended to failure handling.
func TestChaosRunsAreDeterministic(t *testing.T) {
	r1, m1, p1, f1 := chaosRun(t)
	r2, m2, p2, f2 := chaosRun(t)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("recovery reports differ:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("migration logs differ:\n%+v\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("final placements differ:\n%+v\n%+v", p1, p2)
	}
	if f1 != f2 {
		t.Errorf("failed transfers differ: %d vs %d", f1, f2)
	}
}
