package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bass/internal/cluster"
	"bass/internal/mesh"
	"bass/internal/metricstore"
	"bass/internal/obs"
)

// diffRun executes a storm-loaded multi-app simulation with observability
// attached and the given eval-worker count, returning the journal JSONL, the
// Prometheus metric dump, and the number of migrations committed.
func diffRun(t *testing.T, seed int64, polling bool, workers int) (journal, metrics []byte, migrations int) {
	t.Helper()
	const rows, cols, apps = 6, 6, 12
	topo, err := mesh.Grid(mesh.GridOptions{Rows: rows, Cols: cols, Seed: seed, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	n := rows * cols
	nodes := make([]cluster.Node, 0, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nodes = append(nodes, cluster.Node{Name: mesh.GridNodeName(r, c), CPU: 2, MemoryMB: 16384})
		}
	}
	s, err := NewSimulation(topo, nodes, seed, Config{
		EnableMigration: true,
		MonitorInterval: 30 * time.Second,
		EvalWorkers:     workers,
		PollingNet:      polling,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := obs.NewJournal(0)
	store := metricstore.New(0)
	s.AttachObservability(j, store)
	// Storm demand on jittered ~25 Mbps links: plenty of violations, so the
	// runs exercise candidate scoring, cooldowns, and real migrations.
	for i := 0; i < apps; i++ {
		cell := (i * 7) % n
		sr, sc := cell/cols, cell%cols
		name := fmt.Sprintf("chain-%04d", i)
		w := newBenchChain(name, 12, mesh.GridNodeName(sr, sc), mesh.GridNodeName((sr+2)%rows, (sc+1)%cols))
		if _, err := s.Orch.Deploy(name, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var jb, mb bytes.Buffer
	if err := j.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), mb.Bytes(), len(s.Orch.Migrations())
}

// TestParallelEvalByteIdentical pins the hot path's determinism contract at
// the core level: with many storm-loaded apps contending, the controller's
// journal and metric output must be byte-identical whatever the eval-worker
// count, on both net drivers. Candidate scoring may fan out, but every
// emission happens in the serial commit phase in deployment order, so span
// IDs, journal bytes, and metric series cannot depend on scheduling.
func TestParallelEvalByteIdentical(t *testing.T) {
	for _, polling := range []bool{false, true} {
		driver := "event-driven"
		if polling {
			driver = "polling"
		}
		t.Run(driver, func(t *testing.T) {
			sawMigration := false
			for seed := int64(1); seed <= 3; seed++ {
				refJournal, refMetrics, migs := diffRun(t, seed, polling, 0)
				if len(refJournal) == 0 {
					t.Fatalf("seed %d: serial run produced an empty journal", seed)
				}
				sawMigration = sawMigration || migs > 0
				for _, workers := range []int{4, 7} {
					gotJournal, gotMetrics, _ := diffRun(t, seed, polling, workers)
					if !bytes.Equal(refJournal, gotJournal) {
						t.Errorf("seed %d: journal with %d workers differs from serial", seed, workers)
					}
					if !bytes.Equal(refMetrics, gotMetrics) {
						t.Errorf("seed %d: metric dump with %d workers differs from serial", seed, workers)
					}
				}
			}
			if !sawMigration {
				t.Error("no seed produced a migration — the differential never exercised the commit path")
			}
		})
	}
}
