package scheduler

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bass/internal/dag"
)

func testNodes() []NodeInfo {
	return []NodeInfo{
		{Name: "node1", FreeCPU: 4, FreeMemoryMB: 8192, TotalCPU: 4, TotalMemoryMB: 8192, LinkCapacityMbps: 40},
		{Name: "node2", FreeCPU: 4, FreeMemoryMB: 8192, TotalCPU: 4, TotalMemoryMB: 8192, LinkCapacityMbps: 30},
		{Name: "node3", FreeCPU: 4, FreeMemoryMB: 8192, TotalCPU: 4, TotalMemoryMB: 8192, LinkCapacityMbps: 20},
	}
}

func TestRankNodesPrefersCapacity(t *testing.T) {
	nodes := []NodeInfo{
		{Name: "small", FreeCPU: 2, FreeMemoryMB: 2048, LinkCapacityMbps: 10},
		{Name: "big", FreeCPU: 16, FreeMemoryMB: 65536, LinkCapacityMbps: 50},
		{Name: "mid", FreeCPU: 8, FreeMemoryMB: 8192, LinkCapacityMbps: 30},
	}
	ranked := RankNodes(nodes)
	want := []string{"big", "mid", "small"}
	for i, n := range ranked {
		if n.Name != want[i] {
			t.Fatalf("rank %d = %q, want %q", i, n.Name, want[i])
		}
	}
}

func TestRankNodesDeterministicTieBreak(t *testing.T) {
	nodes := []NodeInfo{
		{Name: "b", FreeCPU: 4, FreeMemoryMB: 4096, LinkCapacityMbps: 20},
		{Name: "a", FreeCPU: 4, FreeMemoryMB: 4096, LinkCapacityMbps: 20},
	}
	ranked := RankNodes(nodes)
	if ranked[0].Name != "a" {
		t.Errorf("tie should break by name: got %q first", ranked[0].Name)
	}
}

// TestFig6Placement checks the node coloring of Fig 6: with 4-core nodes and
// 1-core components, BFS packs {1,3,2,4} then {5,7,6}; longest-path packs
// the chain {1,2,4,5} then {7,3,6}.
func TestFig6Placement(t *testing.T) {
	g := fig6Graph(t)
	nodes := testNodes()

	bfs, err := NewBass(HeuristicBFS).Schedule(g, nodes)
	if err != nil {
		t.Fatalf("bfs schedule: %v", err)
	}
	for _, comp := range []string{"1", "3", "2", "4"} {
		if bfs[comp] != "node1" {
			t.Errorf("bfs: component %s on %s, want node1", comp, bfs[comp])
		}
	}
	for _, comp := range []string{"5", "7", "6"} {
		if bfs[comp] != "node2" {
			t.Errorf("bfs: component %s on %s, want node2", comp, bfs[comp])
		}
	}

	lp, err := NewBass(HeuristicLongestPath).Schedule(g, nodes)
	if err != nil {
		t.Fatalf("lp schedule: %v", err)
	}
	for _, comp := range []string{"1", "2", "4", "5"} {
		if lp[comp] != "node1" {
			t.Errorf("lp: component %s on %s, want node1", comp, lp[comp])
		}
	}
	if lp["7"] != "node2" {
		t.Errorf("lp: component 7 on %s, want node2", lp["7"])
	}
}

func TestScheduleRespectsCapacity(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "a", CPU: 3})
	g.MustAddComponent(dag.Component{Name: "b", CPU: 3})
	g.MustAddEdge("a", "b", 10)
	nodes := []NodeInfo{
		{Name: "n1", FreeCPU: 4, FreeMemoryMB: 1024, TotalCPU: 4, TotalMemoryMB: 1024},
		{Name: "n2", FreeCPU: 4, FreeMemoryMB: 1024, TotalCPU: 4, TotalMemoryMB: 1024},
	}
	for _, policy := range []Policy{NewBass(HeuristicBFS), NewBass(HeuristicLongestPath), NewK3s()} {
		got, err := policy.Schedule(g, nodes)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if got["a"] == got["b"] {
			t.Errorf("%s: a and b co-located on %s despite 4-core nodes", policy.Name(), got["a"])
		}
	}
}

func TestScheduleInfeasible(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "huge", CPU: 64})
	nodes := testNodes()
	for _, policy := range []Policy{NewBass(HeuristicBFS), NewBass(HeuristicLongestPath), NewK3s()} {
		if _, err := policy.Schedule(g, nodes); !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: want ErrInfeasible, got %v", policy.Name(), err)
		}
	}
}

func TestScheduleHonorsPin(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "free", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "stuck", CPU: 1, Labels: dag.Pin("node3")})
	g.MustAddEdge("free", "stuck", 5)
	for _, policy := range []Policy{NewBass(HeuristicBFS), NewBass(HeuristicLongestPath), NewK3s()} {
		got, err := policy.Schedule(g, testNodes())
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if got["stuck"] != "node3" {
			t.Errorf("%s: pinned component on %s, want node3", policy.Name(), got["stuck"])
		}
	}
}

func TestSchedulePinToUnknownNode(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "stuck", CPU: 1, Labels: dag.Pin("nowhere")})
	if _, err := NewBass(HeuristicBFS).Schedule(g, testNodes()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible for pin to unknown node, got %v", err)
	}
}

func TestK3sSpreadsComponents(t *testing.T) {
	// Identical 1-core components: least-allocated scoring must spread them
	// across nodes rather than packing.
	g := dag.NewGraph("app")
	for _, name := range []string{"a", "b", "c"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1, MemoryMB: 512})
	}
	g.MustAddEdge("a", "b", 50)
	g.MustAddEdge("b", "c", 50)
	got, err := NewK3s().Schedule(g, testNodes())
	if err != nil {
		t.Fatalf("k3s: %v", err)
	}
	used := map[string]bool{}
	for _, node := range got {
		used[node] = true
	}
	if len(used) != 3 {
		t.Errorf("k3s placed on %d nodes, want spread over 3 (got %v)", len(used), got)
	}
}

func TestBassCoLocatesHeavyEdges(t *testing.T) {
	// Same graph: BASS must co-locate the chain on one node.
	g := dag.NewGraph("app")
	for _, name := range []string{"a", "b", "c"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1, MemoryMB: 512})
	}
	g.MustAddEdge("a", "b", 50)
	g.MustAddEdge("b", "c", 50)
	for _, h := range []Heuristic{HeuristicBFS, HeuristicLongestPath} {
		got, err := NewBass(h).Schedule(g, testNodes())
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if got["a"] != got["b"] || got["b"] != got["c"] {
			t.Errorf("%v: chain split across nodes: %v", h, got)
		}
	}
}

// TestSchedulePropertyAllPlacedWithinCapacity property-checks every policy:
// all components placed, and no node's CPU or memory oversubscribed.
func TestSchedulePropertyAllPlacedWithinCapacity(t *testing.T) {
	policies := []Policy{NewBass(HeuristicBFS), NewBass(HeuristicLongestPath), NewK3s()}
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		g := dag.NewGraph("random")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			g.MustAddComponent(dag.Component{
				Name:     names[i],
				CPU:      float64(rng.Intn(4)) + 0.5,
				MemoryMB: float64(rng.Intn(2048)) + 128,
			})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					g.MustAddEdge(names[i], names[j], float64(rng.Intn(50)))
				}
			}
		}
		nodes := []NodeInfo{
			{Name: "n1", FreeCPU: 24, FreeMemoryMB: 32768, TotalCPU: 24, TotalMemoryMB: 32768, LinkCapacityMbps: 50},
			{Name: "n2", FreeCPU: 24, FreeMemoryMB: 32768, TotalCPU: 24, TotalMemoryMB: 32768, LinkCapacityMbps: 40},
			{Name: "n3", FreeCPU: 24, FreeMemoryMB: 32768, TotalCPU: 24, TotalMemoryMB: 32768, LinkCapacityMbps: 30},
		}
		for _, p := range policies {
			got, err := p.Schedule(g, nodes)
			if err != nil {
				return false
			}
			if len(got) != n {
				return false
			}
			cpu := map[string]float64{}
			mem := map[string]float64{}
			for comp, node := range got {
				c, cerr := g.Component(comp)
				if cerr != nil {
					return false
				}
				cpu[node] += c.CPU
				mem[node] += c.MemoryMB
			}
			for _, node := range nodes {
				if cpu[node.Name] > node.TotalCPU+1e-9 || mem[node.Name] > node.TotalMemoryMB+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBassSchedule27Components(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 26)
	nodes := testNodes()
	for i := range nodes {
		nodes[i].FreeCPU = 64
		nodes[i].TotalCPU = 64
		nodes[i].FreeMemoryMB = 65536
		nodes[i].TotalMemoryMB = 65536
	}
	sched := NewBass(HeuristicLongestPath)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(g, nodes); err != nil {
			b.Fatal(err)
		}
	}
}
