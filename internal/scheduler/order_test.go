package scheduler

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bass/internal/dag"
)

// fig6Graph reconstructs the application DAG of the paper's Fig 6: a
// seven-component graph whose BFS ordering is 1,3,2,4,5,7,6 and whose
// longest-path ordering is 1,2,4,5,7,3,6.
func fig6Graph(t testing.TB) *dag.Graph {
	t.Helper()
	g := dag.NewGraph("fig6")
	for _, name := range []string{"1", "2", "3", "4", "5", "6", "7"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1})
	}
	g.MustAddEdge("1", "2", 10)
	g.MustAddEdge("1", "3", 12)
	g.MustAddEdge("3", "6", 2)
	g.MustAddEdge("2", "4", 10)
	g.MustAddEdge("4", "5", 10)
	g.MustAddEdge("5", "7", 9)
	return g
}

func TestFig6Ordering(t *testing.T) {
	g := fig6Graph(t)

	bfs, err := BFSOrder(g)
	if err != nil {
		t.Fatalf("BFSOrder: %v", err)
	}
	wantBFS := []string{"1", "3", "2", "4", "5", "7", "6"}
	if !reflect.DeepEqual(bfs, wantBFS) {
		t.Errorf("BFS order = %v, want %v (paper Fig 6)", bfs, wantBFS)
	}

	lp, err := LongestPathOrder(g)
	if err != nil {
		t.Fatalf("LongestPathOrder: %v", err)
	}
	wantLP := []string{"1", "2", "4", "5", "7", "3", "6"}
	if !reflect.DeepEqual(lp, wantLP) {
		t.Errorf("longest-path order = %v, want %v (paper Fig 6)", lp, wantLP)
	}
}

func TestFig6Chains(t *testing.T) {
	g := fig6Graph(t)
	chains, err := LongestPathChains(g)
	if err != nil {
		t.Fatalf("LongestPathChains: %v", err)
	}
	want := [][]string{{"1", "2", "4", "5", "7"}, {"3", "6"}}
	if !reflect.DeepEqual(chains, want) {
		t.Errorf("chains = %v, want %v", chains, want)
	}
}

func TestBFSOrderSingleComponent(t *testing.T) {
	g := dag.NewGraph("one")
	g.MustAddComponent(dag.Component{Name: "only"})
	got, err := BFSOrder(g)
	if err != nil {
		t.Fatalf("BFSOrder: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"only"}) {
		t.Errorf("order = %v", got)
	}
}

func TestBFSOrderExploresHeaviestEdgeFirst(t *testing.T) {
	// A fan-out root: children must appear in decreasing edge weight.
	g := dag.NewGraph("fan")
	g.MustAddComponent(dag.Component{Name: "root"})
	for _, c := range []string{"a", "b", "c"} {
		g.MustAddComponent(dag.Component{Name: c})
	}
	g.MustAddEdge("root", "a", 1)
	g.MustAddEdge("root", "b", 5)
	g.MustAddEdge("root", "c", 3)
	got, err := BFSOrder(g)
	if err != nil {
		t.Fatalf("BFSOrder: %v", err)
	}
	want := []string{"root", "b", "c", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestBFSOrderDisconnectedGraph(t *testing.T) {
	g := dag.NewGraph("parts")
	for _, c := range []string{"a", "b", "x", "y"} {
		g.MustAddComponent(dag.Component{Name: c})
	}
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("x", "y", 2)
	got, err := BFSOrder(g)
	if err != nil {
		t.Fatalf("BFSOrder: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("order %v does not cover all components", got)
	}
	seen := map[string]bool{}
	for _, c := range got {
		if seen[c] {
			t.Fatalf("component %q appears twice in %v", c, got)
		}
		seen[c] = true
	}
}

func TestLongestPathPrefersHeavierChain(t *testing.T) {
	// Two chains from the root; the heavier (by weight sum, not hop count)
	// must be extracted first.
	g := dag.NewGraph("chains")
	for _, c := range []string{"r", "a1", "a2", "a3", "b1", "b2"} {
		g.MustAddComponent(dag.Component{Name: c})
	}
	// Long but light chain: r->a1->a2->a3 (sum 3).
	g.MustAddEdge("r", "a1", 1)
	g.MustAddEdge("a1", "a2", 1)
	g.MustAddEdge("a2", "a3", 1)
	// Short but heavy chain: r->b1->b2 (sum 40).
	g.MustAddEdge("r", "b1", 20)
	g.MustAddEdge("b1", "b2", 20)
	chains, err := LongestPathChains(g)
	if err != nil {
		t.Fatalf("LongestPathChains: %v", err)
	}
	want := []string{"r", "b1", "b2"}
	if !reflect.DeepEqual(chains[0], want) {
		t.Errorf("first chain = %v, want %v", chains[0], want)
	}
}

func TestLongestPathTieBreakEarlierTopoParent(t *testing.T) {
	// Diamond with exactly tied path weights: s->a->t and s->b->t both sum
	// to 10. The documented rule is that the earlier-topo parent wins, so the
	// extracted chain must run through a regardless of edge insertion order.
	build := func(edges [][2]string) *dag.Graph {
		g := dag.NewGraph("diamond")
		for _, c := range []string{"s", "a", "b", "t"} {
			g.MustAddComponent(dag.Component{Name: c, CPU: 1})
		}
		for _, e := range edges {
			g.MustAddEdge(e[0], e[1], 5)
		}
		return g
	}
	orders := [][][2]string{
		{{"s", "a"}, {"s", "b"}, {"a", "t"}, {"b", "t"}},
		{{"s", "b"}, {"s", "a"}, {"b", "t"}, {"a", "t"}},
	}
	for i, edges := range orders {
		chains, err := LongestPathChains(build(edges))
		if err != nil {
			t.Fatalf("insertion order %d: %v", i, err)
		}
		want := []string{"s", "a", "t"}
		if !reflect.DeepEqual(chains[0], want) {
			t.Errorf("insertion order %d: first chain = %v, want %v (earlier-topo parent)", i, chains[0], want)
		}
	}
}

func TestLongestPathTieBreakSurvivesFloatNoise(t *testing.T) {
	// Two two-hop paths with equal intended weight 0.3: via a it accumulates
	// as 0.15+0.15 (exactly 0.3 in float64), via b as 0.1+0.2
	// (0.30000000000000004). Exact float comparison saw b's path as strictly
	// heavier and flipped the parent to the later-topo b; the epsilon-aware
	// comparison must treat the paths as tied and keep the earlier-topo
	// parent a.
	g := dag.NewGraph("fp")
	for _, c := range []string{"s", "a", "b", "t"} {
		g.MustAddComponent(dag.Component{Name: c, CPU: 1})
	}
	g.MustAddEdge("s", "a", 0.15)
	g.MustAddEdge("a", "t", 0.15) // sums to exactly 0.3
	g.MustAddEdge("s", "b", 0.1)
	g.MustAddEdge("b", "t", 0.2) // sums to 0.30000000000000004
	chains, err := LongestPathChains(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s", "a", "t"}
	if !reflect.DeepEqual(chains[0], want) {
		t.Errorf("first chain = %v, want %v (FP noise must not decide the tie)", chains[0], want)
	}
}

func TestLongestPathTiedWeightChainsDeterministic(t *testing.T) {
	// A wider fan of identical-weight chains: r->(x1|x2|x3)->l. Every path
	// ties, so extraction must deterministically follow the earliest-topo
	// branch, then the next, independent of map iteration or edge order.
	g := dag.NewGraph("fan")
	for _, c := range []string{"r", "x3", "x1", "x2", "l"} {
		g.MustAddComponent(dag.Component{Name: c, CPU: 1})
	}
	for _, mid := range []string{"x3", "x1", "x2"} {
		g.MustAddEdge("r", mid, 7)
		g.MustAddEdge(mid, "l", 7)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	// The earliest mid in topological order must carry the first chain.
	firstMid := ""
	for _, name := range topo {
		if name != "r" && name != "l" {
			firstMid = name
			break
		}
	}
	for run := 0; run < 10; run++ {
		chains, err := LongestPathChains(g)
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"r", firstMid, "l"}
		if !reflect.DeepEqual(chains[0], want) {
			t.Fatalf("run %d: first chain = %v, want %v", run, chains[0], want)
		}
	}
}

func TestOrderUnknownHeuristic(t *testing.T) {
	g := fig6Graph(t)
	if _, err := Order(g, Heuristic(99)); err == nil {
		t.Error("Order with unknown heuristic: want error, got nil")
	}
}

func TestParseHeuristic(t *testing.T) {
	tests := []struct {
		in      string
		want    Heuristic
		wantErr bool
	}{
		{in: "bfs", want: HeuristicBFS},
		{in: "longest-path", want: HeuristicLongestPath},
		{in: "longestpath", want: HeuristicLongestPath},
		{in: "lp", want: HeuristicLongestPath},
		{in: "dijkstra", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseHeuristic(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseHeuristic(%q): want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseHeuristic(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseHeuristic(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestHeuristicString(t *testing.T) {
	if HeuristicBFS.String() != "bfs" {
		t.Errorf("HeuristicBFS.String() = %q", HeuristicBFS.String())
	}
	if HeuristicLongestPath.String() != "longest-path" {
		t.Errorf("HeuristicLongestPath.String() = %q", HeuristicLongestPath.String())
	}
}

// randomDAG builds a random DAG: edges only go from lower to higher index,
// guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	g := dag.NewGraph("random")
	for i := 0; i < n; i++ {
		g.MustAddComponent(dag.Component{Name: string(rune('A' + i)), CPU: 1})
	}
	names := g.Components()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.MustAddEdge(names[i], names[j], float64(rng.Intn(100)))
			}
		}
	}
	return g
}

// TestOrderingsArePermutations property-checks both heuristics: every
// component appears exactly once, regardless of graph shape.
func TestOrderingsArePermutations(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, n)
		for _, h := range []Heuristic{HeuristicBFS, HeuristicLongestPath} {
			order, err := Order(g, h)
			if err != nil {
				return false
			}
			if len(order) != n {
				return false
			}
			seen := make(map[string]bool, n)
			for _, c := range order {
				if seen[c] || !g.HasComponent(c) {
					return false
				}
				seen[c] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLongestPathChainsAreRealPaths property-checks that every extracted
// chain is a connected directed path in the graph.
func TestLongestPathChainsAreRealPaths(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, n)
		chains, err := LongestPathChains(g)
		if err != nil {
			return false
		}
		for _, chain := range chains {
			for i := 0; i+1 < len(chain); i++ {
				if g.Weight(chain[i], chain[i+1]) == 0 {
					// Weight 0 could be a real zero-weight edge; check
					// existence explicitly.
					found := false
					for _, e := range g.Out(chain[i]) {
						if e.To == chain[i+1] {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBFSOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BFSOrder(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongestPathOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LongestPathOrder(g); err != nil {
			b.Fatal(err)
		}
	}
}
