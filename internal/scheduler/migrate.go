package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"bass/internal/dag"
)

// ErrNoBetterNode is returned by ChooseMigrationTarget when no node improves
// on the component's current placement.
var ErrNoBetterNode = errors.New("scheduler: no better node for component")

// ErrNoFailoverNode is returned by ChooseFailoverTarget when no surviving
// node can host the component at all.
var ErrNoFailoverNode = errors.New("scheduler: no surviving node can host component")

// DependencyUsage is the controller's observation of one deployed component
// pair (an edge of the application DAG whose endpoints sit on different
// nodes). It merges the net-monitor's passive measurement (achieved
// bandwidth) with the probing view of the link (§3.2.2, Algorithm 3).
type DependencyUsage struct {
	// Component is the edge source; Dep the edge target.
	Component string
	Dep       string
	// RequiredMbps is the profiled bandwidth requirement (DAG edge weight).
	RequiredMbps float64
	// AchievedMbps is the passively measured traffic between the pair.
	AchievedMbps float64
	// PathCapacityMbps is the bottleneck capacity of the network path
	// between the two components' nodes, from the net-monitor's cache.
	PathCapacityMbps float64
	// PathAvailableMbps is the spare capacity on that path (capacity minus
	// other traffic), from headroom probing.
	PathAvailableMbps float64
}

// UtilizationFrac reports achieved/path-capacity: the pair's "link
// utilization" that §6.3.2/§6.3.3 set migration thresholds against (25-95%).
func (d DependencyUsage) UtilizationFrac() float64 {
	if d.PathCapacityMbps <= 0 {
		return 0
	}
	return d.AchievedMbps / d.PathCapacityMbps
}

// GoodputFrac reports achieved/required — Algorithm 3's "goodput": the
// fraction of its profiled bandwidth requirement the pair is achieving.
func (d DependencyUsage) GoodputFrac() float64 {
	if d.RequiredMbps <= 0 {
		return 0
	}
	return d.AchievedMbps / d.RequiredMbps
}

// MigrationConfig holds the two controller parameters (§6.3.3): the link
// utilization threshold and the headroom capacity to maintain on each link.
type MigrationConfig struct {
	// UtilizationThreshold triggers migration when a pair consumes more than
	// this fraction of its bandwidth quota while the link lacks headroom
	// (Algorithm 3 line 8). The paper sweeps 0.25–0.95; 0.5–0.65 balances
	// best for fixed arrivals.
	UtilizationThreshold float64
	// GoodputFloor triggers migration when the link has degraded so much
	// that the pair achieves less than this fraction of its requirement
	// (§3.2.2 scenario 2, Fig 8's 50% goodput trigger).
	GoodputFloor float64
	// HeadroomMbps is the spare capacity the system maintains on every link.
	HeadroomMbps float64
}

// DefaultMigrationConfig mirrors the paper's defaults: 50% thresholds and a
// headroom of 20% of a 20 Mbps-class link (4 Mbps, per Fig 8).
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		UtilizationThreshold: 0.5,
		GoodputFloor:         0.5,
		HeadroomMbps:         4,
	}
}

// PathUtilizationFrac reports the aggregate utilization of the pair's path
// bottleneck: (capacity − available) / capacity. Several pairs sharing one
// link can saturate it while each pair's own share stays small; the
// aggregate view catches that (§6.3.2's "link utilization").
func (d DependencyUsage) PathUtilizationFrac() float64 {
	if d.PathCapacityMbps <= 0 {
		return 0
	}
	u := (d.PathCapacityMbps - d.PathAvailableMbps) / d.PathCapacityMbps
	if u < 0 {
		return 0
	}
	return u
}

// violated reports whether a dependency pair needs migration under the
// config.
func (cfg MigrationConfig) violated(d DependencyUsage) bool {
	// Scenario 1 (§3.2.2, Algorithm 3): the pair's traffic consumes more
	// than the threshold fraction of the link while the link cannot also
	// hold the required headroom.
	if cfg.UtilizationThreshold > 0 &&
		d.UtilizationFrac() > cfg.UtilizationThreshold &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	// Scenario 1b: the pair's path is saturated in aggregate (many pairs
	// sharing the link) and the pair is actually using it.
	if cfg.UtilizationThreshold > 0 && d.AchievedMbps > 0 &&
		d.PathUtilizationFrac() > cfg.UtilizationThreshold &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	// Scenario 2 (Fig 8): link degradation starves the pair outright —
	// goodput falls below the floor with no headroom left to recover into.
	if cfg.GoodputFloor > 0 && d.RequiredMbps > 0 &&
		d.GoodputFrac() < cfg.GoodputFloor &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	return false
}

// MigrationReport is the outcome of one candidate-selection pass, feeding
// Table 1 ("components exceeding link utilization quota" vs "components
// migrated").
type MigrationReport struct {
	// Violating lists every component appearing in a violated pair.
	Violating []string
	// Candidates is the deduplicated migration list: at most one endpoint of
	// each communicating pair, heaviest bandwidth requirement first.
	Candidates []string
}

// FindMigrationCandidates implements Algorithm 3. It scans the observed
// dependency pairs for bandwidth violations, sorts the violating components
// by bandwidth requirement (descending), and removes the dependency partner
// of any already-selected component so that only one side of each
// communicating pair migrates. Components in exclude (typically those still
// inside their re-migration guard window) cannot become candidates, letting
// their violating partner be selected instead.
func FindMigrationCandidates(g *dag.Graph, usages []DependencyUsage, cfg MigrationConfig, exclude map[string]bool) MigrationReport {
	// Total bandwidth requirement per component (both directions), used for
	// the descending sort.
	bw := make(map[string]float64, g.NumComponents())
	for _, name := range g.Components() {
		for _, mbps := range g.Neighbors(name) {
			bw[name] += mbps
		}
	}

	violating := make(map[string]bool)
	var violatingOrder []string
	mark := func(name string) {
		if !violating[name] {
			violating[name] = true
			violatingOrder = append(violatingOrder, name)
		}
	}
	for _, u := range usages {
		if cfg.violated(u) {
			mark(u.Component)
			mark(u.Dep)
		}
	}

	// Pinned components (nodeSelector-style) can never migrate, and excluded
	// ones must not thrash; both still count as violating so their movable
	// partner gets selected.
	candidates := make([]string, 0, len(violatingOrder))
	for _, name := range violatingOrder {
		if exclude[name] {
			continue
		}
		if c, err := g.Component(name); err == nil && c.Pinned() {
			continue
		}
		candidates = append(candidates, name)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if bw[candidates[i]] != bw[candidates[j]] {
			return bw[candidates[i]] > bw[candidates[j]]
		}
		return candidates[i] < candidates[j]
	})

	// Deduplicate: walking heaviest-first, drop any remaining candidate that
	// is a DAG neighbor of an already-kept one.
	removed := make(map[string]bool)
	var final []string
	for _, cand := range candidates {
		if removed[cand] {
			continue
		}
		final = append(final, cand)
		for dep := range g.Neighbors(cand) {
			removed[dep] = true
		}
	}

	sort.Strings(violatingOrder)
	return MigrationReport{Violating: violatingOrder, Candidates: final}
}

// PathQuery reports the spare capacity (Mbps) available on the network path
// between two nodes; co-located nodes report a very large value.
type PathQuery func(fromNode, toNode string) float64

// ChooseMigrationTarget picks the node to move a component to (§3.2.2): among
// nodes with sufficient CPU and memory, prefer the node hosting the most of
// the component's DAG neighbors (minimising inter-node transfer), requiring
// that every remote dependency's bandwidth fits within the path's available
// capacity plus headroom. Returns ErrNoBetterNode when no candidate beats
// the current placement.
func ChooseMigrationTarget(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
) (string, error) {
	comp, err := g.Component(component)
	if err != nil {
		return "", err
	}
	if comp.Pinned() {
		return "", fmt.Errorf("%w: %q is pinned to %q", ErrNoBetterNode, component, comp.PinnedTo())
	}
	current, ok := assignment[component]
	if !ok {
		return "", fmt.Errorf("scheduler: component %q not in assignment", component)
	}
	neighbors := g.Neighbors(component)

	type candidate struct {
		node     NodeInfo
		depCount int
		// score is the bandwidth (Mbps) of this component's edges that the
		// placement could satisfy: local edges count in full, remote edges up
		// to the path's available capacity.
		score float64
		// feasible reports whether every remote dependency fits in the
		// path's available capacity plus headroom.
		feasible bool
	}
	evaluate := func(nodeName string) candidate {
		c := candidate{feasible: true}
		for dep, mbps := range neighbors {
			depNode, placed := assignment[dep]
			if !placed {
				continue
			}
			// Edges to pinned endpoints weigh double: no later migration can
			// relieve them, so satisfying them now matters more than edges
			// between movable pairs, which progressive relocation can fix.
			weight := 1.0
			if d, derr := g.Component(dep); derr == nil && d.Pinned() {
				weight = 2
			}
			if depNode == nodeName {
				c.depCount++
				c.score += weight * mbps
				continue
			}
			avail := mbps
			if pathAvail != nil {
				avail = pathAvail(nodeName, depNode)
			}
			if avail < mbps+cfg.HeadroomMbps {
				c.feasible = false
			}
			if avail < mbps {
				c.score += weight * avail
			} else {
				c.score += weight * mbps
			}
		}
		return c
	}
	var cands []candidate
	for _, n := range nodes {
		if n.Name == current || !fits(n, comp) {
			continue
		}
		c := evaluate(n.Name)
		c.node = n
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("%w: %q stays on %q", ErrNoBetterNode, component, current)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].feasible != cands[j].feasible {
			return cands[i].feasible
		}
		// Feasible nodes rank by dependency count (the paper's rule);
		// saturated fallbacks rank by satisfiable bandwidth, where a single
		// light co-located dependency must not outvote a heavy reachable one.
		if cands[i].feasible {
			if cands[i].depCount != cands[j].depCount {
				return cands[i].depCount > cands[j].depCount
			}
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
		} else {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			if cands[i].depCount != cands[j].depCount {
				return cands[i].depCount > cands[j].depCount
			}
		}
		// Secondary: more free CPU, then name.
		if cands[i].node.FreeCPU != cands[j].node.FreeCPU {
			return cands[i].node.FreeCPU > cands[j].node.FreeCPU
		}
		return cands[i].node.Name < cands[j].node.Name
	})
	best := cands[0]
	if best.feasible {
		return best.node.Name, nil
	}
	// No node passes the bandwidth check — the network around the component
	// is saturated (the very situation that triggered the migration). Fall
	// back to the node that can satisfy the most of the component's
	// bandwidth, with a hysteresis margin over the current placement so the
	// component does not thrash. Accepting the best partially-feasible node
	// shifts the bottleneck onto edges whose endpoints are movable,
	// unlocking the progressive relocation the paper observes in Table 1.
	currentScore := evaluate(current).score
	if best.score > currentScore*1.05 {
		return best.node.Name, nil
	}
	return "", fmt.Errorf("%w: %q stays on %q", ErrNoBetterNode, component, current)
}

// ChooseFailoverTarget picks a node for a component whose host died. It is
// ChooseMigrationTarget without a current placement: there is no "stay put"
// option and no hysteresis — the component is down, so ANY node that fits its
// CPU and memory beats leaving it dead. Bandwidth-feasible candidates (every
// placed remote dependency fits in path headroom) rank first by dependency
// count then satisfiable bandwidth, exactly like migration; when none is
// feasible the best partially-feasible node wins outright. nodes must already
// exclude dead or cordoned hosts; assignment must not contain components
// stranded on dead nodes (their paths would be meaningless). Only when no
// node has the CPU and memory does it return ErrNoFailoverNode — the caller
// queues the component until capacity returns.
func ChooseFailoverTarget(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
) (string, error) {
	comp, err := g.Component(component)
	if err != nil {
		return "", err
	}
	if comp.Pinned() {
		// A pinned component can only ever run on its pinned node; if that
		// node is not among the survivors, the component waits for it.
		for _, n := range nodes {
			if n.Name == comp.PinnedTo() && fits(n, comp) {
				return n.Name, nil
			}
		}
		return "", fmt.Errorf("%w: %q pinned to %q", ErrNoFailoverNode, component, comp.PinnedTo())
	}
	neighbors := g.Neighbors(component)

	type candidate struct {
		node     NodeInfo
		depCount int
		score    float64
		feasible bool
	}
	var cands []candidate
	for _, n := range nodes {
		if !fits(n, comp) {
			continue
		}
		c := candidate{node: n, feasible: true}
		for dep, mbps := range neighbors {
			depNode, placed := assignment[dep]
			if !placed {
				continue
			}
			weight := 1.0
			if d, derr := g.Component(dep); derr == nil && d.Pinned() {
				weight = 2
			}
			if depNode == n.Name {
				c.depCount++
				c.score += weight * mbps
				continue
			}
			avail := mbps
			if pathAvail != nil {
				avail = pathAvail(n.Name, depNode)
			}
			if avail < mbps+cfg.HeadroomMbps {
				c.feasible = false
			}
			if avail < mbps {
				c.score += weight * avail
			} else {
				c.score += weight * mbps
			}
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("%w: %q", ErrNoFailoverNode, component)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].feasible != cands[j].feasible {
			return cands[i].feasible
		}
		if cands[i].feasible {
			if cands[i].depCount != cands[j].depCount {
				return cands[i].depCount > cands[j].depCount
			}
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
		} else if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].node.FreeCPU != cands[j].node.FreeCPU {
			return cands[i].node.FreeCPU > cands[j].node.FreeCPU
		}
		return cands[i].node.Name < cands[j].node.Name
	})
	return cands[0].node.Name, nil
}
