package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"bass/internal/dag"
)

// ErrNoBetterNode is returned by ChooseMigrationTarget when no node improves
// on the component's current placement.
var ErrNoBetterNode = errors.New("scheduler: no better node for component")

// ErrNoFailoverNode is returned by ChooseFailoverTarget when no surviving
// node can host the component at all.
var ErrNoFailoverNode = errors.New("scheduler: no surviving node can host component")

// DependencyUsage is the controller's observation of one deployed component
// pair (an edge of the application DAG whose endpoints sit on different
// nodes). It merges the net-monitor's passive measurement (achieved
// bandwidth) with the probing view of the link (§3.2.2, Algorithm 3).
type DependencyUsage struct {
	// Component is the edge source; Dep the edge target.
	Component string
	Dep       string
	// RequiredMbps is the profiled bandwidth requirement (DAG edge weight).
	RequiredMbps float64
	// AchievedMbps is the passively measured traffic between the pair.
	AchievedMbps float64
	// PathCapacityMbps is the bottleneck capacity of the network path
	// between the two components' nodes, from the net-monitor's cache.
	PathCapacityMbps float64
	// PathAvailableMbps is the spare capacity on that path (capacity minus
	// other traffic), from headroom probing.
	PathAvailableMbps float64
}

// UtilizationFrac reports achieved/path-capacity: the pair's "link
// utilization" that §6.3.2/§6.3.3 set migration thresholds against (25-95%).
// A path with no capacity left is fully utilized by definition: it reports 1,
// not 0 — returning 0 made a dead path read as perfectly healthy and scenario
// 1 migration never fired for it.
func (d DependencyUsage) UtilizationFrac() float64 {
	if d.PathCapacityMbps <= 0 {
		return 1
	}
	return d.AchievedMbps / d.PathCapacityMbps
}

// GoodputFrac reports achieved/required — Algorithm 3's "goodput": the
// fraction of its profiled bandwidth requirement the pair is achieving.
func (d DependencyUsage) GoodputFrac() float64 {
	if d.RequiredMbps <= 0 {
		return 0
	}
	return d.AchievedMbps / d.RequiredMbps
}

// MigrationConfig holds the two controller parameters (§6.3.3): the link
// utilization threshold and the headroom capacity to maintain on each link.
type MigrationConfig struct {
	// UtilizationThreshold triggers migration when a pair consumes more than
	// this fraction of its bandwidth quota while the link lacks headroom
	// (Algorithm 3 line 8). The paper sweeps 0.25–0.95; 0.5–0.65 balances
	// best for fixed arrivals.
	UtilizationThreshold float64
	// GoodputFloor triggers migration when the link has degraded so much
	// that the pair achieves less than this fraction of its requirement
	// (§3.2.2 scenario 2, Fig 8's 50% goodput trigger).
	GoodputFloor float64
	// HeadroomMbps is the spare capacity the system maintains on every link.
	HeadroomMbps float64
}

// DefaultMigrationConfig mirrors the paper's defaults: 50% thresholds and a
// headroom of 20% of a 20 Mbps-class link (4 Mbps, per Fig 8).
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		UtilizationThreshold: 0.5,
		GoodputFloor:         0.5,
		HeadroomMbps:         4,
	}
}

// PathUtilizationFrac reports the aggregate utilization of the pair's path
// bottleneck: (capacity − available) / capacity. Several pairs sharing one
// link can saturate it while each pair's own share stays small; the
// aggregate view catches that (§6.3.2's "link utilization"). A zero-capacity
// path is saturated by definition and reports 1 (see UtilizationFrac).
func (d DependencyUsage) PathUtilizationFrac() float64 {
	if d.PathCapacityMbps <= 0 {
		return 1
	}
	u := (d.PathCapacityMbps - d.PathAvailableMbps) / d.PathCapacityMbps
	if u < 0 {
		return 0
	}
	return u
}

// violated reports whether a dependency pair needs migration under the
// config.
func (cfg MigrationConfig) violated(d DependencyUsage) bool {
	// A dead path — bottleneck capacity degraded to zero — cannot carry the
	// pair at all. It is violated outright whenever migration is enabled and
	// the pair actually needs bandwidth; the fraction-based scenarios below
	// also see it as fully utilized (UtilizationFrac pins at 1), but this
	// clause keeps the decision independent of where the thresholds sit.
	if (cfg.UtilizationThreshold > 0 || cfg.GoodputFloor > 0) &&
		d.PathCapacityMbps <= 0 && d.RequiredMbps > 0 {
		return true
	}
	// Scenario 1 (§3.2.2, Algorithm 3): the pair's traffic consumes more
	// than the threshold fraction of the link while the link cannot also
	// hold the required headroom. A pair that requires no bandwidth is never
	// violated — without the guard, UtilizationFrac saturating at 1 on a
	// dead path would flag even requirement-free pairs.
	if cfg.UtilizationThreshold > 0 && d.RequiredMbps > 0 &&
		d.UtilizationFrac() > cfg.UtilizationThreshold &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	// Scenario 1b: the pair's path is saturated in aggregate (many pairs
	// sharing the link) and the pair is actually using it.
	if cfg.UtilizationThreshold > 0 && d.AchievedMbps > 0 &&
		d.PathUtilizationFrac() > cfg.UtilizationThreshold &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	// Scenario 2 (Fig 8): link degradation starves the pair outright —
	// goodput falls below the floor with no headroom left to recover into.
	if cfg.GoodputFloor > 0 && d.RequiredMbps > 0 &&
		d.GoodputFrac() < cfg.GoodputFloor &&
		d.PathAvailableMbps < cfg.HeadroomMbps {
		return true
	}
	return false
}

// MigrationReport is the outcome of one candidate-selection pass, feeding
// Table 1 ("components exceeding link utilization quota" vs "components
// migrated").
type MigrationReport struct {
	// Violating lists every component appearing in a violated pair.
	Violating []string
	// Candidates is the deduplicated migration list: at most one endpoint of
	// each communicating pair, heaviest bandwidth requirement first.
	Candidates []string
}

// FindMigrationCandidates implements Algorithm 3. It scans the observed
// dependency pairs for bandwidth violations, sorts the violating components
// by bandwidth requirement (descending), and removes the dependency partner
// of any already-selected component so that only one side of each
// communicating pair migrates. Components in exclude (typically those still
// inside their re-migration guard window) cannot become candidates, letting
// their violating partner be selected instead.
func FindMigrationCandidates(g *dag.Graph, usages []DependencyUsage, cfg MigrationConfig, exclude map[string]bool) MigrationReport {
	// Quiet-path early return: no violated pair means an empty report, and
	// the control loop calls this every cycle for every application — the
	// maps and sort below must not be paid when nothing is wrong.
	anyViolated := false
	for _, u := range usages {
		if cfg.violated(u) {
			anyViolated = true
			break
		}
	}
	if !anyViolated {
		return MigrationReport{}
	}

	// Total bandwidth requirement per component (both directions), used for
	// the descending sort.
	bw := make(map[string]float64, g.NumComponents())
	for _, name := range g.Components() {
		for _, mbps := range g.Neighbors(name) {
			bw[name] += mbps
		}
	}

	violating := make(map[string]bool)
	var violatingOrder []string
	mark := func(name string) {
		if !violating[name] {
			violating[name] = true
			violatingOrder = append(violatingOrder, name)
		}
	}
	for _, u := range usages {
		if cfg.violated(u) {
			mark(u.Component)
			mark(u.Dep)
		}
	}

	// Pinned components (nodeSelector-style) can never migrate, and excluded
	// ones must not thrash; both still count as violating so their movable
	// partner gets selected.
	candidates := make([]string, 0, len(violatingOrder))
	for _, name := range violatingOrder {
		if exclude[name] {
			continue
		}
		if c, err := g.Component(name); err == nil && c.Pinned() {
			continue
		}
		candidates = append(candidates, name)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if bw[candidates[i]] != bw[candidates[j]] {
			return bw[candidates[i]] > bw[candidates[j]]
		}
		return candidates[i] < candidates[j]
	})

	// Deduplicate: walking heaviest-first, drop any remaining candidate that
	// is a DAG neighbor of an already-kept one.
	removed := make(map[string]bool)
	var final []string
	for _, cand := range candidates {
		if removed[cand] {
			continue
		}
		final = append(final, cand)
		for dep := range g.Neighbors(cand) {
			removed[dep] = true
		}
	}

	sort.Strings(violatingOrder)
	return MigrationReport{Violating: violatingOrder, Candidates: final}
}

// PathQuery reports the spare capacity (Mbps) available on the network path
// between two nodes; co-located nodes report a very large value.
type PathQuery func(fromNode, toNode string) float64

// Parallel runs a batch of independent tasks, returning when all are done.
// sim.Pool satisfies it structurally; nil means run serially. Candidate
// scoring hands chunks of the node list to it — scoring is a pure read of
// the graph, assignment, and path cache, so chunks race on nothing, and
// every result lands in its node's slot so assembly order (and therefore
// every scoreboard and journal byte) is independent of execution order.
type Parallel interface {
	Run(fns []func())
}

// parallelScoreMin is the node count below which chunked scoring is not
// worth the task handoff.
const parallelScoreMin = 64

// nodeSlot is one node's scoring outcome, indexed by position in the node
// list. A zero Rejection (RejectNone) marks a scored candidate.
type nodeSlot struct {
	c      candidate
	reject Rejection
}

// scoreSlots evaluates every node into its slot — serially, or chunked on
// pool when it pays. current skips that node (pass "" for failover-style
// choices where every node competes).
func scoreSlots(
	g *dag.Graph,
	comp *dag.Component,
	neighbors map[string]float64,
	assignment Assignment,
	nodes []NodeInfo,
	current string,
	pathAvail PathQuery,
	headroomMbps float64,
	pool Parallel,
	slots []nodeSlot,
) []nodeSlot {
	if cap(slots) < len(nodes) {
		slots = make([]nodeSlot, len(nodes))
	}
	slots = slots[:len(nodes)]
	eval := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := nodes[i]
			switch {
			case n.Name == current:
				slots[i] = nodeSlot{reject: RejectCurrentNode}
			case !fits(n, comp):
				slots[i] = nodeSlot{reject: RejectNoCapacity}
			default:
				c := scoreCandidate(g, neighbors, assignment, n.Name, pathAvail, headroomMbps)
				c.node = n
				slots[i] = nodeSlot{c: c}
			}
		}
	}
	if pool == nil || len(nodes) < parallelScoreMin {
		eval(0, len(nodes))
		return slots
	}
	const maxChunks = 16
	step := (len(nodes) + maxChunks - 1) / maxChunks
	tasks := make([]func(), 0, maxChunks)
	for lo := 0; lo < len(nodes); lo += step {
		lo, hi := lo, lo+step
		if hi > len(nodes) {
			hi = len(nodes)
		}
		tasks = append(tasks, func() { eval(lo, hi) })
	}
	pool.Run(tasks)
	return slots
}

// pooledScoreboard is the chunk-parallel scoring pass: every node scored
// into its slot, then assembled in node order into the same cands/skipped
// sequence the serial loop builds. Kept separate from the chooser body so
// the serial path's neighbors map never escapes into the pool closures.
func pooledScoreboard(
	g *dag.Graph,
	comp *dag.Component,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	current string,
	pathAvail PathQuery,
	headroomMbps float64,
	pool Parallel,
	wantSkipped bool,
) ([]candidate, []CandidateScore) {
	neighbors := g.Neighbors(component)
	slots := scoreSlots(g, comp, neighbors, assignment, nodes, current, pathAvail, headroomMbps, pool, nil)
	var cands []candidate
	var skipped []CandidateScore
	for i := range slots {
		s := &slots[i]
		if s.reject != RejectNone {
			if wantSkipped {
				skipped = append(skipped, CandidateScore{Node: nodes[i].Name, Rejection: s.reject})
			}
			continue
		}
		cands = append(cands, s.c)
	}
	return cands, skipped
}

// candidate is one node's evaluation during migration or failover target
// choice.
type candidate struct {
	node     NodeInfo
	depCount int
	// local and remote split the satisfiable edge bandwidth (Mbps) into the
	// part served by co-located edges (counted in full) and the part served
	// over remote paths (capped at each path's available capacity); score is
	// their sum.
	local  float64
	remote float64
	score  float64
	// feasible reports whether every remote dependency fits in the path's
	// available capacity plus headroom.
	feasible bool
}

// scoreCandidate evaluates placing the component (whose DAG edges are
// neighbors) on nodeName: local edges count in full, remote edges up to the
// path's available capacity, edges to pinned endpoints weigh double — no
// later migration can relieve them, so satisfying them now matters more than
// edges between movable pairs, which progressive relocation can fix.
func scoreCandidate(
	g *dag.Graph,
	neighbors map[string]float64,
	assignment Assignment,
	nodeName string,
	pathAvail PathQuery,
	headroomMbps float64,
) candidate {
	c := candidate{feasible: true}
	for dep, mbps := range neighbors {
		depNode, placed := assignment[dep]
		if !placed {
			continue
		}
		weight := 1.0
		if d, derr := g.Component(dep); derr == nil && d.Pinned() {
			weight = 2
		}
		if depNode == nodeName {
			c.depCount++
			c.local += weight * mbps
			continue
		}
		avail := mbps
		if pathAvail != nil {
			avail = pathAvail(nodeName, depNode)
		}
		if avail < mbps+headroomMbps {
			c.feasible = false
		}
		if avail < mbps {
			c.remote += weight * avail
		} else {
			c.remote += weight * mbps
		}
	}
	c.score = c.local + c.remote
	return c
}

// betterCandidate is the single tie-break comparator for migration and
// failover target choice. Feasible nodes rank by dependency count (the
// paper's rule) then satisfiable bandwidth; saturated fallbacks rank by
// satisfiable bandwidth first, where a single light co-located dependency
// must not outvote a heavy reachable one, then dependency count. Secondary:
// more free CPU, then name for determinism.
func betterCandidate(a, b candidate) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.feasible {
		if a.depCount != b.depCount {
			return a.depCount > b.depCount
		}
		if a.score != b.score {
			return a.score > b.score
		}
	} else {
		if a.score != b.score {
			return a.score > b.score
		}
		if a.depCount != b.depCount {
			return a.depCount > b.depCount
		}
	}
	if a.node.FreeCPU != b.node.FreeCPU {
		return a.node.FreeCPU > b.node.FreeCPU
	}
	return a.node.Name < b.node.Name
}

// explainScoreboard renders a sorted candidate slice plus the pre-filtered
// rejects as CandidateScores: the winner keeps RejectNone, feasible losers
// are outscored, infeasible ones lacked bandwidth — except a winning
// infeasible fallback, and bestHysteresis marks the case where the best
// fallback lost to the anti-thrash margin instead.
func explainScoreboard(cands []candidate, chosen string, bestHysteresis bool, skipped []CandidateScore) []CandidateScore {
	out := make([]CandidateScore, 0, len(cands)+len(skipped))
	for i, c := range cands {
		cs := CandidateScore{
			Node:       c.node.Name,
			Feasible:   c.feasible,
			DepCount:   c.depCount,
			Score:      c.score,
			LocalMbps:  c.local,
			RemoteMbps: c.remote,
		}
		switch {
		case c.node.Name == chosen:
			cs.Rejection = RejectNone
		case i == 0 && bestHysteresis:
			cs.Rejection = RejectHysteresis
		case !c.feasible:
			cs.Rejection = RejectInsufficientBandwidth
		default:
			cs.Rejection = RejectOutscored
		}
		out = append(out, cs)
	}
	return append(out, skipped...)
}

// ChooseMigrationTarget picks the node to move a component to (§3.2.2): among
// nodes with sufficient CPU and memory, prefer the node hosting the most of
// the component's DAG neighbors (minimising inter-node transfer), requiring
// that every remote dependency's bandwidth fits within the path's available
// capacity plus headroom. Returns ErrNoBetterNode when no candidate beats
// the current placement.
func ChooseMigrationTarget(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
) (string, error) {
	return ChooseMigrationTargetExplained(g, component, assignment, nodes, pathAvail, cfg, nil)
}

// ChooseMigrationTargetExplained is ChooseMigrationTarget recording the full
// candidate scoreboard through rec. A nil rec skips all explanation
// bookkeeping and behaves identically to ChooseMigrationTarget.
func ChooseMigrationTargetExplained(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
	rec Recorder,
) (string, error) {
	return ChooseMigrationTargetPooled(g, component, assignment, nodes, pathAvail, cfg, rec, nil)
}

// ChooseMigrationTargetPooled is ChooseMigrationTargetExplained with the
// candidate-scoring pass chunked across pool (nil scores serially). Scoring
// writes into per-node slots and the serial assembly below reads them in
// node order, so the chosen target, every scoreboard row, and every journal
// byte are identical whichever way the chunks execute.
func ChooseMigrationTargetPooled(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
	rec Recorder,
	pool Parallel,
) (string, error) {
	comp, err := g.Component(component)
	if err != nil {
		return "", err
	}
	if comp.Pinned() {
		explain(rec, Explanation{Kind: ChoiceMigration, Component: component, Current: assignment[component]})
		return "", fmt.Errorf("%w: %q is pinned to %q", ErrNoBetterNode, component, comp.PinnedTo())
	}
	current, ok := assignment[component]
	if !ok {
		return "", fmt.Errorf("scheduler: component %q not in assignment", component)
	}
	var cands []candidate
	var skipped []CandidateScore
	if pool != nil && len(nodes) >= parallelScoreMin {
		cands, skipped = pooledScoreboard(g, comp, component, assignment, nodes, current, pathAvail, cfg.HeadroomMbps, pool, rec != nil)
	} else {
		neighbors := g.Neighbors(component)
		for _, n := range nodes {
			if n.Name == current {
				if rec != nil {
					skipped = append(skipped, CandidateScore{Node: n.Name, Rejection: RejectCurrentNode})
				}
				continue
			}
			if !fits(n, comp) {
				if rec != nil {
					skipped = append(skipped, CandidateScore{Node: n.Name, Rejection: RejectNoCapacity})
				}
				continue
			}
			c := scoreCandidate(g, neighbors, assignment, n.Name, pathAvail, cfg.HeadroomMbps)
			c.node = n
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		explain(rec, Explanation{Kind: ChoiceMigration, Component: component, Current: current, Candidates: skipped})
		return "", fmt.Errorf("%w: %q stays on %q", ErrNoBetterNode, component, current)
	}
	sort.SliceStable(cands, func(i, j int) bool { return betterCandidate(cands[i], cands[j]) })
	best := cands[0]
	chosen := ""
	hysteresis := false
	if best.feasible {
		chosen = best.node.Name
	} else {
		// No node passes the bandwidth check — the network around the
		// component is saturated (the very situation that triggered the
		// migration). Fall back to the node that can satisfy the most of the
		// component's bandwidth, with a hysteresis margin over the current
		// placement so the component does not thrash. Accepting the best
		// partially-feasible node shifts the bottleneck onto edges whose
		// endpoints are movable, unlocking the progressive relocation the
		// paper observes in Table 1.
		currentScore := scoreCandidate(g, g.Neighbors(component), assignment, current, pathAvail, cfg.HeadroomMbps).score
		if best.score > currentScore*1.05 {
			chosen = best.node.Name
		} else {
			hysteresis = true
		}
	}
	if rec != nil {
		rec.RecordExplanation(Explanation{
			Kind:       ChoiceMigration,
			Component:  component,
			Current:    current,
			Chosen:     chosen,
			Candidates: explainScoreboard(cands, chosen, hysteresis, skipped),
		})
	}
	if chosen != "" {
		return chosen, nil
	}
	return "", fmt.Errorf("%w: %q stays on %q", ErrNoBetterNode, component, current)
}

// ChooseFailoverTarget picks a node for a component whose host died. It is
// ChooseMigrationTarget without a current placement: there is no "stay put"
// option and no hysteresis — the component is down, so ANY node that fits its
// CPU and memory beats leaving it dead. Bandwidth-feasible candidates (every
// placed remote dependency fits in path headroom) rank first by dependency
// count then satisfiable bandwidth, exactly like migration; when none is
// feasible the best partially-feasible node wins outright. nodes must already
// exclude dead or cordoned hosts; assignment must not contain components
// stranded on dead nodes (their paths would be meaningless). Only when no
// node has the CPU and memory does it return ErrNoFailoverNode — the caller
// queues the component until capacity returns.
func ChooseFailoverTarget(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
) (string, error) {
	return ChooseFailoverTargetExplained(g, component, assignment, nodes, pathAvail, cfg, nil)
}

// ChooseFailoverTargetExplained is ChooseFailoverTarget recording the full
// candidate scoreboard through rec. A nil rec skips all explanation
// bookkeeping and behaves identically to ChooseFailoverTarget.
func ChooseFailoverTargetExplained(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
	rec Recorder,
) (string, error) {
	comp, err := g.Component(component)
	if err != nil {
		return "", err
	}
	if comp.Pinned() {
		// A pinned component can only ever run on its pinned node; if that
		// node is not among the survivors, the component waits for it.
		chosen := ""
		for _, n := range nodes {
			if n.Name == comp.PinnedTo() && fits(n, comp) {
				chosen = n.Name
				break
			}
		}
		if rec != nil {
			ex := Explanation{Kind: ChoiceFailover, Component: component, Chosen: chosen}
			for _, n := range nodes {
				cs := CandidateScore{Node: n.Name, Rejection: RejectPinnedElsewhere}
				if n.Name == comp.PinnedTo() {
					cs.Feasible = fits(n, comp)
					if cs.Feasible {
						cs.Rejection = RejectNone
					} else {
						cs.Rejection = RejectNoCapacity
					}
				}
				ex.Candidates = append(ex.Candidates, cs)
			}
			rec.RecordExplanation(ex)
		}
		if chosen != "" {
			return chosen, nil
		}
		return "", fmt.Errorf("%w: %q pinned to %q", ErrNoFailoverNode, component, comp.PinnedTo())
	}
	neighbors := g.Neighbors(component)

	var cands []candidate
	var skipped []CandidateScore
	for _, n := range nodes {
		if !fits(n, comp) {
			if rec != nil {
				skipped = append(skipped, CandidateScore{Node: n.Name, Rejection: RejectNoCapacity})
			}
			continue
		}
		c := scoreCandidate(g, neighbors, assignment, n.Name, pathAvail, cfg.HeadroomMbps)
		c.node = n
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		explain(rec, Explanation{Kind: ChoiceFailover, Component: component, Candidates: skipped})
		return "", fmt.Errorf("%w: %q", ErrNoFailoverNode, component)
	}
	sort.SliceStable(cands, func(i, j int) bool { return betterCandidate(cands[i], cands[j]) })
	// The component is down: ANY node that fits beats leaving it dead, so
	// even an infeasible best candidate wins outright — no hysteresis.
	chosen := cands[0].node.Name
	if rec != nil {
		rec.RecordExplanation(Explanation{
			Kind:       ChoiceFailover,
			Component:  component,
			Chosen:     chosen,
			Candidates: explainScoreboard(cands, chosen, false, skipped),
		})
	}
	return chosen, nil
}

// ErrNoFeasibleNode is returned by ChooseFailoverTargetStrict when nodes have
// the CPU and memory but none can also carry the component's bandwidth — the
// caller should escalate (re-route, shed) rather than accept a placement the
// data plane cannot serve.
var ErrNoFeasibleNode = errors.New("scheduler: no bandwidth-feasible node for component")

// ChooseFailoverTargetStrict is ChooseFailoverTargetExplained restricted to
// bandwidth-feasible winners: it refuses the partially-feasible fallback and
// returns ErrNoFeasibleNode instead. The reconciler's first ladder rung uses
// it so a clean migration is only claimed when the network can actually carry
// the result; subsequent rungs fall back to the lenient chooser.
func ChooseFailoverTargetStrict(
	g *dag.Graph,
	component string,
	assignment Assignment,
	nodes []NodeInfo,
	pathAvail PathQuery,
	cfg MigrationConfig,
	rec Recorder,
) (string, error) {
	comp, err := g.Component(component)
	if err != nil {
		return "", err
	}
	if comp.Pinned() {
		// Pinned components have exactly one legal home; strictness adds
		// nothing beyond the lenient path's fits() check.
		return ChooseFailoverTargetExplained(g, component, assignment, nodes, pathAvail, cfg, rec)
	}
	neighbors := g.Neighbors(component)
	var cands []candidate
	var skipped []CandidateScore
	for _, n := range nodes {
		if !fits(n, comp) {
			if rec != nil {
				skipped = append(skipped, CandidateScore{Node: n.Name, Rejection: RejectNoCapacity})
			}
			continue
		}
		c := scoreCandidate(g, neighbors, assignment, n.Name, pathAvail, cfg.HeadroomMbps)
		c.node = n
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		explain(rec, Explanation{Kind: ChoiceFailover, Component: component, Candidates: skipped})
		return "", fmt.Errorf("%w: %q", ErrNoFailoverNode, component)
	}
	sort.SliceStable(cands, func(i, j int) bool { return betterCandidate(cands[i], cands[j]) })
	chosen := ""
	if cands[0].feasible {
		chosen = cands[0].node.Name
	}
	if rec != nil {
		rec.RecordExplanation(Explanation{
			Kind:       ChoiceFailover,
			Component:  component,
			Chosen:     chosen,
			Candidates: explainScoreboard(cands, chosen, false, skipped),
		})
	}
	if chosen == "" {
		return "", fmt.Errorf("%w: %q", ErrNoFeasibleNode, component)
	}
	return chosen, nil
}
