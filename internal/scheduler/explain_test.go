package scheduler

import (
	"reflect"
	"testing"

	"bass/internal/dag"
)

// captureRecorder collects explanations for assertion.
type captureRecorder struct {
	explanations []Explanation
}

func (r *captureRecorder) RecordExplanation(ex Explanation) {
	r.explanations = append(r.explanations, ex)
}

// explainNodes builds a small cluster for target-choice tests.
func explainNodes() []NodeInfo {
	return []NodeInfo{
		{Name: "n1", FreeCPU: 4, FreeMemoryMB: 4096},
		{Name: "n2", FreeCPU: 4, FreeMemoryMB: 4096},
		{Name: "n3", FreeCPU: 4, FreeMemoryMB: 4096},
		{Name: "tiny", FreeCPU: 0.1, FreeMemoryMB: 64},
	}
}

// TestBetterCandidateTieBreakOrder pins the comparator's tie-break order —
// the one comparator both migration and failover sort with: feasibility,
// then (depCount, score) for feasible / (score, depCount) for saturated
// fallbacks, then free CPU, then name.
func TestBetterCandidateTieBreakOrder(t *testing.T) {
	n := func(name string, cpu float64) NodeInfo { return NodeInfo{Name: name, FreeCPU: cpu} }
	cases := []struct {
		name string
		a, b candidate
		want bool // betterCandidate(a, b)
	}{
		{"feasible beats infeasible",
			candidate{node: n("a", 0), feasible: true},
			candidate{node: n("b", 9), feasible: false, score: 99, depCount: 9}, true},
		{"feasible: depCount before score",
			candidate{node: n("a", 0), feasible: true, depCount: 2, score: 1},
			candidate{node: n("b", 0), feasible: true, depCount: 1, score: 50}, true},
		{"feasible: score breaks depCount tie",
			candidate{node: n("a", 0), feasible: true, depCount: 1, score: 50},
			candidate{node: n("b", 0), feasible: true, depCount: 1, score: 1}, true},
		{"infeasible: score before depCount",
			candidate{node: n("a", 0), score: 50, depCount: 0},
			candidate{node: n("b", 0), score: 1, depCount: 9}, true},
		{"infeasible: depCount breaks score tie",
			candidate{node: n("a", 0), score: 5, depCount: 2},
			candidate{node: n("b", 0), score: 5, depCount: 1}, true},
		{"free CPU breaks full tie",
			candidate{node: n("a", 8), feasible: true, depCount: 1, score: 5},
			candidate{node: n("b", 4), feasible: true, depCount: 1, score: 5}, true},
		{"name is the final tie-break",
			candidate{node: n("a", 4), feasible: true},
			candidate{node: n("b", 4), feasible: true}, true},
	}
	for _, tc := range cases {
		if got := betterCandidate(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: betterCandidate = %v, want %v", tc.name, got, tc.want)
		}
		// Strict weak ordering: a<b and b<a cannot both hold.
		if betterCandidate(tc.a, tc.b) && betterCandidate(tc.b, tc.a) {
			t.Errorf("%s: comparator is not antisymmetric", tc.name)
		}
	}
	self := candidate{node: n("a", 1), feasible: true, depCount: 1, score: 1}
	if betterCandidate(self, self) {
		t.Error("comparator is not irreflexive")
	}
}

func TestChooseMigrationTargetExplained(t *testing.T) {
	g := dag.NewGraph("pair")
	g.MustAddComponent(dag.Component{Name: "producer", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "consumer", CPU: 1})
	g.MustAddEdge("producer", "consumer", 8)
	assignment := Assignment{"producer": "n1", "consumer": "n2"}
	// Every inter-node path is saturated: only co-locating with the consumer
	// on n2 satisfies the edge.
	pathAvail := func(from, to string) float64 { return 1 }
	cfg := MigrationConfig{HeadroomMbps: 4}

	rec := &captureRecorder{}
	got, err := ChooseMigrationTargetExplained(g, "producer", assignment, explainNodes(), pathAvail, cfg, rec)
	if err != nil || got != "n2" {
		t.Fatalf("chose %q, %v; want n2", got, err)
	}
	// Recorder must not change the outcome.
	plain, err := ChooseMigrationTarget(g, "producer", assignment, explainNodes(), pathAvail, cfg)
	if err != nil || plain != got {
		t.Fatalf("nil-recorder path chose %q, %v; explained chose %q", plain, err, got)
	}
	if len(rec.explanations) != 1 {
		t.Fatalf("recorded %d explanations, want 1", len(rec.explanations))
	}
	ex := rec.explanations[0]
	if ex.Kind != ChoiceMigration || ex.Component != "producer" || ex.Current != "n1" || ex.Chosen != "n2" {
		t.Fatalf("explanation header = %+v", ex)
	}
	byNode := make(map[string]CandidateScore)
	for _, cs := range ex.Candidates {
		byNode[cs.Node] = cs
	}
	if len(byNode) != 4 {
		t.Fatalf("scoreboard = %+v, want all 4 nodes", ex.Candidates)
	}
	if w := byNode["n2"]; w.Rejection != RejectNone || !w.Feasible || w.DepCount != 1 || w.LocalMbps != 8 || w.Score != 8 {
		t.Errorf("winner row = %+v", w)
	}
	if r := byNode["n3"]; r.Rejection != RejectInsufficientBandwidth || r.Feasible || r.RemoteMbps != 1 {
		t.Errorf("saturated row = %+v", r)
	}
	if r := byNode["n1"]; r.Rejection != RejectCurrentNode {
		t.Errorf("current-node row = %+v", r)
	}
	if r := byNode["tiny"]; r.Rejection != RejectNoCapacity {
		t.Errorf("undersized row = %+v", r)
	}
}

func TestChooseMigrationTargetExplainsHysteresis(t *testing.T) {
	g := dag.NewGraph("pair")
	g.MustAddComponent(dag.Component{Name: "producer", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "consumer", CPU: 1})
	g.MustAddEdge("producer", "consumer", 8)
	assignment := Assignment{"producer": "n1", "consumer": "n2"}
	// Everything is equally saturated: no move clears the hysteresis margin.
	pathAvail := func(from, to string) float64 { return 1 }
	nodes := []NodeInfo{
		{Name: "n1", FreeCPU: 4, FreeMemoryMB: 4096},
		{Name: "n3", FreeCPU: 4, FreeMemoryMB: 4096},
	}
	rec := &captureRecorder{}
	_, err := ChooseMigrationTargetExplained(g, "producer", assignment, nodes, pathAvail, MigrationConfig{HeadroomMbps: 4}, rec)
	if err == nil {
		t.Fatal("saturated mesh produced a move")
	}
	ex := rec.explanations[0]
	if ex.Chosen != "" {
		t.Fatalf("chosen = %q, want none", ex.Chosen)
	}
	found := false
	for _, cs := range ex.Candidates {
		if cs.Node == "n3" {
			found = true
			if cs.Rejection != RejectHysteresis {
				t.Errorf("best fallback rejection = %q, want %q", cs.Rejection, RejectHysteresis)
			}
		}
	}
	if !found {
		t.Fatalf("n3 missing from scoreboard: %+v", ex.Candidates)
	}
}

func TestChooseFailoverTargetExplained(t *testing.T) {
	g := dag.NewGraph("pair")
	g.MustAddComponent(dag.Component{Name: "producer", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "consumer", CPU: 1})
	g.MustAddEdge("producer", "consumer", 8)
	assignment := Assignment{"consumer": "n2"}
	pathAvail := func(from, to string) float64 {
		if from == "n2" || to == "n2" {
			return 100
		}
		return 1
	}
	rec := &captureRecorder{}
	got, err := ChooseFailoverTargetExplained(g, "producer", assignment, explainNodes(), pathAvail, MigrationConfig{HeadroomMbps: 4}, rec)
	if err != nil || got != "n2" {
		t.Fatalf("chose %q, %v; want n2", got, err)
	}
	plain, err := ChooseFailoverTarget(g, "producer", assignment, explainNodes(), pathAvail, MigrationConfig{HeadroomMbps: 4})
	if err != nil || plain != got {
		t.Fatalf("nil-recorder path chose %q, %v; explained chose %q", plain, err, got)
	}
	ex := rec.explanations[0]
	if ex.Kind != ChoiceFailover || ex.Chosen != "n2" {
		t.Fatalf("explanation header = %+v", ex)
	}
	var winner, tiny *CandidateScore
	for i := range ex.Candidates {
		switch ex.Candidates[i].Node {
		case "n2":
			winner = &ex.Candidates[i]
		case "tiny":
			tiny = &ex.Candidates[i]
		}
	}
	if winner == nil || winner.Rejection != RejectNone || winner.DepCount != 1 {
		t.Errorf("winner row = %+v", winner)
	}
	if tiny == nil || tiny.Rejection != RejectNoCapacity {
		t.Errorf("undersized row = %+v", tiny)
	}
}

func TestChooseFailoverTargetExplainsPinned(t *testing.T) {
	g := dag.NewGraph("cam")
	g.MustAddComponent(dag.Component{Name: "camera", CPU: 1, Labels: dag.Pin("n3")})
	rec := &captureRecorder{}
	got, err := ChooseFailoverTargetExplained(g, "camera", Assignment{}, explainNodes(), nil, MigrationConfig{}, rec)
	if err != nil || got != "n3" {
		t.Fatalf("chose %q, %v; want pinned n3", got, err)
	}
	ex := rec.explanations[0]
	if ex.Chosen != "n3" {
		t.Fatalf("explanation = %+v", ex)
	}
	for _, cs := range ex.Candidates {
		want := RejectPinnedElsewhere
		if cs.Node == "n3" {
			want = RejectNone
		}
		if cs.Rejection != want {
			t.Errorf("node %s rejection = %q, want %q", cs.Node, cs.Rejection, want)
		}
	}
}

func TestScheduleExplainedMatchesSchedule(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "a", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "b", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "pin", CPU: 1, Labels: dag.Pin("n2")})
	g.MustAddEdge("a", "b", 5)
	g.MustAddEdge("b", "pin", 2)
	nodes := []NodeInfo{
		{Name: "n1", FreeCPU: 2, FreeMemoryMB: 2048, TotalCPU: 4, TotalMemoryMB: 4096, LinkCapacityMbps: 40},
		{Name: "n2", FreeCPU: 2, FreeMemoryMB: 2048, TotalCPU: 4, TotalMemoryMB: 4096, LinkCapacityMbps: 20},
	}
	for _, p := range []ExplainingPolicy{NewBass(HeuristicBFS), NewK3s()} {
		rec := &captureRecorder{}
		explained, err := p.ScheduleExplained(g, nodes, rec)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		plain, err := p.Schedule(g, nodes)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !reflect.DeepEqual(explained, plain) {
			t.Errorf("%s: explained assignment %v differs from plain %v", p.Name(), explained, plain)
		}
		if len(rec.explanations) != g.NumComponents() {
			t.Fatalf("%s: %d explanations, want one per component (%d)",
				p.Name(), len(rec.explanations), g.NumComponents())
		}
		for _, ex := range rec.explanations {
			if ex.Kind != ChoiceSchedule {
				t.Errorf("%s: kind = %q", p.Name(), ex.Kind)
			}
			if ex.Chosen != plain[ex.Component] {
				t.Errorf("%s: explanation for %q chose %q, assignment says %q",
					p.Name(), ex.Component, ex.Chosen, plain[ex.Component])
			}
		}
	}
}

// TestExplainedNilRecorderAllocParity pins the cost contract: passing a nil
// recorder must not allocate more than the pre-explanation implementation —
// explanation bookkeeping is gated entirely on rec != nil.
func TestExplainedNilRecorderAllocParity(t *testing.T) {
	g := dag.NewGraph("pair")
	g.MustAddComponent(dag.Component{Name: "producer", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "consumer", CPU: 1})
	g.MustAddEdge("producer", "consumer", 8)
	assignment := Assignment{"producer": "n1", "consumer": "n2"}
	nodes := explainNodes()
	pathAvail := func(from, to string) float64 { return 100 }
	cfg := MigrationConfig{HeadroomMbps: 4}

	nilRec := testing.AllocsPerRun(200, func() {
		_, _ = ChooseMigrationTargetExplained(g, "producer", assignment, nodes, pathAvail, cfg, nil)
	})
	rec := &captureRecorder{}
	withRec := testing.AllocsPerRun(200, func() {
		rec.explanations = rec.explanations[:0]
		_, _ = ChooseMigrationTargetExplained(g, "producer", assignment, nodes, pathAvail, cfg, rec)
	})
	if nilRec >= withRec {
		t.Errorf("nil recorder allocates %.1f per op, recording %.1f: bookkeeping is not gated", nilRec, withRec)
	}
	if nilRec > 6 { // candidate slice growth + sort closure; no scoreboard rows
		t.Errorf("nil-recorder migration choice allocates %.1f per op, want ≤ 6", nilRec)
	}
}
