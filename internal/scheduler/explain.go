package scheduler

import "bass/internal/dag"

// Scheduler explainability: every target-choice pass can record a structured
// Explanation — the full candidate scoreboard with per-node score term
// breakdowns and typed rejection reasons — through an optional Recorder.
// Passing a nil Recorder skips all explanation bookkeeping, so the
// unobserved path stays exactly as cheap as before explanations existed.

// Choice classifies what kind of placement decision an Explanation records.
type Choice string

const (
	// ChoiceSchedule is an initial placement (Bass/K3s Schedule).
	ChoiceSchedule Choice = "schedule"
	// ChoiceMigration is a live move off a congested placement.
	ChoiceMigration Choice = "migration"
	// ChoiceFailover is a re-placement after the host died.
	ChoiceFailover Choice = "failover"
	// ChoiceBatch is a joint whole-DAG decision made by the batch placement
	// search: per-component relocation scans, swap probes, and the final
	// greedy-vs-batch verdict all carry this kind.
	ChoiceBatch Choice = "batch"
)

// Rejection is the typed reason a candidate node was not chosen. The winner
// carries RejectNone.
type Rejection string

const (
	// RejectNone marks the chosen node.
	RejectNone Rejection = ""
	// RejectInsufficientBandwidth: some placed remote dependency does not fit
	// in the path's available capacity plus headroom.
	RejectInsufficientBandwidth Rejection = "insufficient bandwidth"
	// RejectOutscored: the node was feasible but another ranked higher.
	RejectOutscored Rejection = "outscored"
	// RejectNoCapacity: the node lacks the CPU or memory to host the
	// component at all.
	RejectNoCapacity Rejection = "insufficient cpu/mem"
	// RejectCurrentNode: migration never re-selects the current placement.
	RejectCurrentNode Rejection = "current placement"
	// RejectHysteresis: the best (infeasible) candidate did not beat the
	// current placement's score by the anti-thrash margin, so the component
	// stays put.
	RejectHysteresis Rejection = "below hysteresis margin"
	// RejectPinnedElsewhere: the component is pinned and this is not its node.
	RejectPinnedElsewhere Rejection = "pinned elsewhere"
)

// CandidateScore is one node's evaluation within a choice pass.
type CandidateScore struct {
	Node     string
	Feasible bool
	// DepCount is how many of the component's DAG neighbors the node
	// co-locates.
	DepCount int
	// Score is the node's total score: satisfiable edge bandwidth in Mbps for
	// migration/failover, ranking points for schedule.
	Score float64
	// LocalMbps and RemoteMbps split a migration/failover score into the
	// bandwidth satisfied by co-located edges and over remote paths (zero for
	// schedule explanations, whose score has no bandwidth terms).
	LocalMbps  float64
	RemoteMbps float64
	Rejection  Rejection
}

// Explanation is the structured record of one placement choice: which node
// won (empty when none did) and how every considered node scored.
type Explanation struct {
	Kind      Choice
	Component string
	// Current is the placement being moved away from (migration only).
	Current string
	// Chosen is the winning node, empty when the pass chose nothing.
	Chosen     string
	Candidates []CandidateScore
}

// Recorder receives explanations as choice passes complete. Implementations
// must not retain the Candidates slice beyond the call if they mutate it.
type Recorder interface {
	RecordExplanation(Explanation)
}

// ExplainingPolicy is a Policy whose Schedule can narrate its per-component
// placement decisions through a Recorder.
type ExplainingPolicy interface {
	Policy
	ScheduleExplained(g *dag.Graph, nodes []NodeInfo, rec Recorder) (Assignment, error)
}

// explain invokes the recorder if one is attached. Call sites gate candidate
// bookkeeping on rec != nil themselves; this only centralises the nil check.
func explain(rec Recorder, ex Explanation) {
	if rec != nil {
		rec.RecordExplanation(ex)
	}
}
