package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"bass/internal/dag"
)

// ErrInfeasible is returned when no node can host a component.
var ErrInfeasible = errors.New("scheduler: no feasible placement")

// NodeInfo is the scheduler's view of one node.
type NodeInfo struct {
	Name string
	// FreeCPU and FreeMemoryMB are the schedulable remainders.
	FreeCPU      float64
	FreeMemoryMB float64
	// TotalCPU and TotalMemoryMB are node capacities (used by the k3s-like
	// baseline's least-allocated scoring).
	TotalCPU      float64
	TotalMemoryMB float64
	// LinkCapacityMbps is the combined capacity across all the node's links —
	// the bandwidth component of BASS's node ranking (§3.2.1).
	LinkCapacityMbps float64
}

// Assignment maps component name → node name.
type Assignment map[string]string

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// NodeRank is one node's ranking breakdown: the three normalised score terms
// and their sum, in RankNodes order.
type NodeRank struct {
	Node NodeInfo
	// CPU, Mem, and Link are the node's free CPU, free memory, and combined
	// link capacity, each normalised by the maximum across nodes.
	CPU, Mem, Link float64
	Score          float64
}

// ScoreNodes computes each node's ranking terms — free CPU, free memory, and
// combined link capacity, each normalised by the maximum across nodes and
// summed — and returns them sorted: higher scores first, ties by name for
// determinism. RankNodes is this without the breakdown.
func ScoreNodes(nodes []NodeInfo) []NodeRank {
	var maxCPU, maxMem, maxLink float64
	for _, n := range nodes {
		maxCPU = maxf(maxCPU, n.FreeCPU)
		maxMem = maxf(maxMem, n.FreeMemoryMB)
		maxLink = maxf(maxLink, n.LinkCapacityMbps)
	}
	out := make([]NodeRank, len(nodes))
	for i, n := range nodes {
		r := NodeRank{Node: n}
		if maxCPU > 0 {
			r.CPU = n.FreeCPU / maxCPU
		}
		if maxMem > 0 {
			r.Mem = n.FreeMemoryMB / maxMem
		}
		if maxLink > 0 {
			r.Link = n.LinkCapacityMbps / maxLink
		}
		r.Score = r.CPU + r.Mem + r.Link
		out[i] = r
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node.Name < out[j].Node.Name
	})
	return out
}

// RankNodes orders nodes for packing: each of free CPU, free memory, and
// combined link capacity is normalised by the maximum across nodes and
// summed; higher scores first, ties by name for determinism.
func RankNodes(nodes []NodeInfo) []NodeInfo {
	ranks := ScoreNodes(nodes)
	out := make([]NodeInfo, len(ranks))
	for i, r := range ranks {
		out[i] = r.Node
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Bass is the BASS scheduler: it orders components with the configured
// heuristic and packs them onto ranked nodes, keeping CPU and memory as hard
// constraints (§3.2.1). A zero value is not usable; construct with NewBass.
type Bass struct {
	heuristic Heuristic
	packFrac  float64
}

// BassOption configures the BASS scheduler.
type BassOption func(*Bass)

// WithPackLimit caps initial packing at the given fraction of each node's
// free capacity (0 < frac ≤ 1). Leaving slack on every node keeps migration
// targets available when links degrade later; production schedulers keep
// similar burst headroom. The default (1.0) packs nodes completely.
func WithPackLimit(frac float64) BassOption {
	return func(b *Bass) {
		if frac > 0 && frac <= 1 {
			b.packFrac = frac
		}
	}
}

// NewBass returns a BASS scheduler using the given ordering heuristic.
func NewBass(h Heuristic, opts ...BassOption) *Bass {
	b := &Bass{heuristic: h, packFrac: 1}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Name identifies the scheduler in experiment output.
func (b *Bass) Name() string { return "bass-" + b.heuristic.String() }

// Heuristic reports the configured ordering heuristic.
func (b *Bass) Heuristic() Heuristic { return b.heuristic }

// Schedule assigns every component of g to a node. Packing walks the ranked
// node list with a moving cursor: consecutive components in heuristic order
// stay on the current node while its capacity permits, then the cursor
// advances — so heuristic-adjacent (bandwidth-heavy) components co-locate.
// For the longest-path heuristic, each extracted chain restarts the cursor
// at the best-ranked node with remaining capacity, keeping whole chains
// together when possible.
func (b *Bass) Schedule(g *dag.Graph, nodes []NodeInfo) (Assignment, error) {
	return b.ScheduleExplained(g, nodes, nil)
}

// ScheduleExplained is Schedule recording one Explanation per component —
// the ranked node scoreboard at the instant it was placed — through rec. A
// nil rec skips all explanation bookkeeping and behaves identically to
// Schedule.
func (b *Bass) ScheduleExplained(g *dag.Graph, nodes []NodeInfo, rec Recorder) (Assignment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	heuristic := b.heuristic
	if heuristic == HeuristicAuto {
		chosen, err := ChooseHeuristic(g)
		if err != nil {
			return nil, err
		}
		heuristic = chosen
	}
	var chains [][]string
	switch heuristic {
	case HeuristicLongestPath:
		cs, err := LongestPathChains(g)
		if err != nil {
			return nil, err
		}
		chains = cs
	default:
		order, err := Order(g, heuristic)
		if err != nil {
			return nil, err
		}
		chains = [][]string{order}
	}

	ranked := RankNodes(nodes)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrInfeasible)
	}
	free := make([]NodeInfo, len(ranked))
	copy(free, ranked)
	if b.packFrac < 1 {
		for i := range free {
			free[i].FreeCPU *= b.packFrac
			free[i].FreeMemoryMB *= b.packFrac
		}
	}

	assignment, err := placePinned(g, free)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		// Pinned placements are decisions too, if foregone ones: one
		// explanation each, in spec order, before the packing narrative.
		for _, name := range g.Components() {
			if pin, pinned := assignment[name]; pinned {
				rec.RecordExplanation(Explanation{Kind: ChoiceSchedule, Component: name, Chosen: pin})
			}
		}
	}
	nodeIdx := func(nodeName string) int {
		for i := range free {
			if free[i].Name == nodeName {
				return i
			}
		}
		return -1
	}
	for _, chain := range chains {
		cursor := 0
		started := false
		for _, name := range chain {
			if pinNode, pinned := assignment[name]; pinned {
				// A pinned component anchors the chain: its successors try
				// to co-locate with it (the camera on a pole pulls the
				// sampler to its node).
				if idx := nodeIdx(pinNode); idx >= 0 {
					cursor = idx
					started = true
				}
				continue
			}
			comp, err := g.Component(name)
			if err != nil {
				return nil, err
			}
			if !started {
				started = true
				// Chain start: best-ranked node that can host it.
				cursor = firstFit(free, 0, comp)
			} else if !fits(free[cursor], comp) {
				cursor = firstFit(free, cursor+1, comp)
				if cursor < 0 {
					// Wrap: earlier nodes may still have room.
					cursor = firstFit(free, 0, comp)
				}
			}
			if cursor < 0 {
				return nil, fmt.Errorf("%w: component %q (cpu=%.2f mem=%.0fMB)",
					ErrInfeasible, name, comp.CPU, comp.MemoryMB)
			}
			if rec != nil {
				rec.RecordExplanation(explainPlacement(comp, name, free, free[cursor].Name))
			}
			free[cursor].FreeCPU -= comp.CPU
			free[cursor].FreeMemoryMB -= comp.MemoryMB
			assignment[name] = free[cursor].Name
		}
	}
	return assignment, nil
}

// explainPlacement snapshots the scoreboard for one packing decision: every
// node in the current free view with its rank score, feasibility against the
// component, and why it lost (capacity, or outranked by the cursor's pick).
func explainPlacement(comp *dag.Component, component string, free []NodeInfo, chosen string) Explanation {
	ex := Explanation{Kind: ChoiceSchedule, Component: component, Chosen: chosen}
	ex.Candidates = make([]CandidateScore, 0, len(free))
	for _, r := range ScoreNodes(free) {
		cs := CandidateScore{Node: r.Node.Name, Score: r.Score, Feasible: fits(r.Node, comp)}
		switch {
		case r.Node.Name == chosen:
			cs.Rejection = RejectNone
		case !cs.Feasible:
			cs.Rejection = RejectNoCapacity
		default:
			cs.Rejection = RejectOutscored
		}
		ex.Candidates = append(ex.Candidates, cs)
	}
	return ex
}

func fits(n NodeInfo, c *dag.Component) bool {
	const eps = 1e-9
	return n.FreeCPU+eps >= c.CPU && n.FreeMemoryMB+eps >= c.MemoryMB
}

// placePinned assigns every pinned component to its pinned node, deducting
// capacity from the free view. It returns the partial assignment.
func placePinned(g *dag.Graph, free []NodeInfo) (Assignment, error) {
	assignment := make(Assignment)
	for _, name := range g.Components() {
		comp, err := g.Component(name)
		if err != nil {
			return nil, err
		}
		pin := comp.PinnedTo()
		if pin == "" {
			continue
		}
		idx := -1
		for i := range free {
			if free[i].Name == pin {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Zero-resource components may pin to hosts outside the
			// schedulable set (external endpoints such as load generators).
			if comp.CPU == 0 && comp.MemoryMB == 0 {
				assignment[name] = pin
				continue
			}
			return nil, fmt.Errorf("%w: component %q pinned to unknown node %q", ErrInfeasible, name, pin)
		}
		if !fits(free[idx], comp) {
			return nil, fmt.Errorf("%w: pinned component %q does not fit on %q", ErrInfeasible, name, pin)
		}
		free[idx].FreeCPU -= comp.CPU
		free[idx].FreeMemoryMB -= comp.MemoryMB
		assignment[name] = pin
	}
	return assignment, nil
}

func firstFit(nodes []NodeInfo, from int, c *dag.Component) int {
	for i := from; i < len(nodes); i++ {
		if fits(nodes[i], c) {
			return i
		}
	}
	return -1
}

// K3s approximates the default k3s/kube-scheduler behaviour the paper
// compares against: components are placed one at a time in spec order;
// feasible nodes are scored with LeastRequestedPriority plus
// BalancedResourceAllocation, both bandwidth-oblivious, and the best-scoring
// node wins (ties by name). The result spreads load across nodes without
// regard to inter-component traffic.
type K3s struct{}

// NewK3s returns the baseline scheduler.
func NewK3s() *K3s { return &K3s{} }

// Name identifies the scheduler in experiment output.
func (*K3s) Name() string { return "k3s-default" }

// Schedule assigns every component of g to a node, one component at a time.
func (k *K3s) Schedule(g *dag.Graph, nodes []NodeInfo) (Assignment, error) {
	return k.ScheduleExplained(g, nodes, nil)
}

// ScheduleExplained is Schedule recording one Explanation per component —
// every node's k3s score at placement time — through rec. A nil rec skips
// all explanation bookkeeping and behaves identically to Schedule.
func (*K3s) ScheduleExplained(g *dag.Graph, nodes []NodeInfo, rec Recorder) (Assignment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	free := make([]NodeInfo, len(nodes))
	copy(free, nodes)

	assignment, err := placePinned(g, free)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		for _, name := range g.Components() {
			if pin, pinned := assignment[name]; pinned {
				rec.RecordExplanation(Explanation{Kind: ChoiceSchedule, Component: name, Chosen: pin})
			}
		}
	}
	for _, name := range g.Components() {
		if _, pinned := assignment[name]; pinned {
			continue
		}
		comp, err := g.Component(name)
		if err != nil {
			return nil, err
		}
		best := -1
		bestScore := -1.0
		for i, n := range free {
			if !fits(n, comp) {
				continue
			}
			s := k3sScore(n, comp)
			if s > bestScore || (s == bestScore && best >= 0 && n.Name < free[best].Name) {
				best, bestScore = i, s
			}
		}
		if best < 0 {
			if rec != nil {
				ex := Explanation{Kind: ChoiceSchedule, Component: name}
				for _, n := range free {
					ex.Candidates = append(ex.Candidates, CandidateScore{Node: n.Name, Rejection: RejectNoCapacity})
				}
				rec.RecordExplanation(ex)
			}
			return nil, fmt.Errorf("%w: component %q (cpu=%.2f mem=%.0fMB)",
				ErrInfeasible, name, comp.CPU, comp.MemoryMB)
		}
		if rec != nil {
			ex := Explanation{Kind: ChoiceSchedule, Component: name, Chosen: free[best].Name}
			for _, n := range free {
				cs := CandidateScore{Node: n.Name, Feasible: fits(n, comp)}
				switch {
				case !cs.Feasible:
					cs.Rejection = RejectNoCapacity
				case n.Name == free[best].Name:
					cs.Score = k3sScore(n, comp)
				default:
					cs.Score = k3sScore(n, comp)
					cs.Rejection = RejectOutscored
				}
				ex.Candidates = append(ex.Candidates, cs)
			}
			rec.RecordExplanation(ex)
		}
		free[best].FreeCPU -= comp.CPU
		free[best].FreeMemoryMB -= comp.MemoryMB
		assignment[name] = free[best].Name
	}
	return assignment, nil
}

// k3sScore combines LeastRequested and BalancedResourceAllocation, each
// worth up to 100 points, mirroring the default scheduler's scoring plugins.
func k3sScore(n NodeInfo, c *dag.Component) float64 {
	cpuAfter := n.FreeCPU - c.CPU
	memAfter := n.FreeMemoryMB - c.MemoryMB
	var leastReq float64
	if n.TotalCPU > 0 {
		leastReq += 50 * cpuAfter / n.TotalCPU
	}
	if n.TotalMemoryMB > 0 {
		leastReq += 50 * memAfter / n.TotalMemoryMB
	}
	var cpuFrac, memFrac float64
	if n.TotalCPU > 0 {
		cpuFrac = (n.TotalCPU - cpuAfter) / n.TotalCPU
	}
	if n.TotalMemoryMB > 0 {
		memFrac = (n.TotalMemoryMB - memAfter) / n.TotalMemoryMB
	}
	diff := cpuFrac - memFrac
	if diff < 0 {
		diff = -diff
	}
	balanced := 100 * (1 - diff)
	return leastReq + balanced
}

// Policy is the interface all placement policies satisfy.
type Policy interface {
	Name() string
	Schedule(g *dag.Graph, nodes []NodeInfo) (Assignment, error)
}

// Compile-time interface checks.
var (
	_ Policy           = (*Bass)(nil)
	_ Policy           = (*K3s)(nil)
	_ ExplainingPolicy = (*Bass)(nil)
	_ ExplainingPolicy = (*K3s)(nil)
)
