// Batch placement: schedule a whole application DAG as one joint decision
// instead of one component at a time. The greedy heuristics (§3.2.1) place
// components in a fixed order and never revisit earlier choices; the batch
// mode seeds from that greedy assignment and runs a budgeted, anytime local
// search over joint assignments — relocate and swap moves, a k-best frontier,
// deterministic seeded tie-breaks — scored with a DCSim-style combined
// compute+network objective over the path oracle. The move budget is the
// scale lever: zero budget returns the greedy seed untouched (byte-identical
// journals), and any positive budget bounds the number of joint candidates
// evaluated, so solve time grows linearly and the search can stop anytime
// with the best placement found so far.
package scheduler

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"bass/internal/dag"
)

// batchEps is the relative margin a candidate joint score must clear to count
// as an improvement; anything closer is a tie and the incumbent (ultimately
// the greedy seed) wins, keeping the search stable under FP noise.
const batchEps = 1e-9

// BatchConfig tunes the batch placement search.
type BatchConfig struct {
	// MoveBudget caps how many joint candidate assignments the local search
	// may evaluate. Zero or negative disables the search entirely: Schedule
	// returns the greedy seed's assignment (and name, and explanations)
	// unchanged, byte-identical to running the seed policy alone.
	MoveBudget int
	// K is the k-best frontier width: how many distinct joint assignments the
	// search keeps and expands. Defaults to 4.
	K int
	// Seed drives the deterministic RNG used to diversify relocation
	// neighborhoods. Equal seeds yield byte-identical searches.
	Seed int64
	// ComputeWeight weighs the compute-balance term against the network term
	// in the joint objective (DCSim-style combined scoring). Zero takes the
	// default 0.25; negative means pure network objective.
	ComputeWeight float64
	// Neighborhood caps the bandwidth-aware relocation targets considered per
	// component per scan (Selimi-style: nodes ranked by the bandwidth they
	// can satisfy toward the component's placed DAG neighbors). Defaults to
	// 8; two extra seeded-random targets are added for diversification.
	Neighborhood int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.K <= 0 {
		c.K = 4
	}
	switch {
	case c.ComputeWeight == 0:
		c.ComputeWeight = 0.25
	case c.ComputeWeight < 0:
		c.ComputeWeight = 0
	}
	if c.Neighborhood <= 0 {
		c.Neighborhood = 8
	}
	return c
}

// Batch wraps a seed policy with the joint local search. Construct with
// NewBatch; the zero value is not usable.
type Batch struct {
	seed      Policy
	cfg       BatchConfig
	pathAvail PathQuery
}

// NewBatch returns a batch scheduler seeding from the given policy (nil
// defaults to BASS longest-path).
func NewBatch(seed Policy, cfg BatchConfig) *Batch {
	if seed == nil {
		seed = NewBass(HeuristicLongestPath)
	}
	return &Batch{seed: seed, cfg: cfg.withDefaults()}
}

// SetPathQuery attaches the path oracle the joint objective scores remote
// edges against. A nil query scores every remote edge at its full demand,
// making the network term constant — the search then only balances compute.
func (b *Batch) SetPathQuery(q PathQuery) { b.pathAvail = q }

// Config reports the effective (defaulted) search configuration.
func (b *Batch) Config() BatchConfig { return b.cfg }

// Name identifies the scheduler in experiment output. With a zero move
// budget batch IS the seed policy — including the name, so journal records
// that embed the policy name stay byte-identical to a greedy run.
func (b *Batch) Name() string {
	if b.cfg.MoveBudget <= 0 {
		return b.seed.Name()
	}
	return "batch-" + b.seed.Name()
}

// Schedule assigns every component of g to a node: greedy seed, then the
// budgeted joint search.
func (b *Batch) Schedule(g *dag.Graph, nodes []NodeInfo) (Assignment, error) {
	return b.ScheduleExplained(g, nodes, nil)
}

// ScheduleExplained is Schedule narrating through rec: the seed policy's
// per-component scoreboards first (exactly as a greedy run records them),
// then one ChoiceBatch explanation per relocation scan and swap probe, then
// a final ChoiceBatch verdict whose pseudo-candidates "greedy" and "batch"
// carry the two joint scores — so a trace shows why batch beat (or matched)
// greedy.
func (b *Batch) ScheduleExplained(g *dag.Graph, nodes []NodeInfo, rec Recorder) (Assignment, error) {
	var seeded Assignment
	var err error
	if ep, ok := b.seed.(ExplainingPolicy); ok {
		seeded, err = ep.ScheduleExplained(g, nodes, rec)
	} else {
		seeded, err = b.seed.Schedule(g, nodes)
	}
	if err != nil || b.cfg.MoveBudget <= 0 {
		return seeded, err
	}
	s, ok := newBatchSearch(g, nodes, b.cfg, b.pathAvail, rec)
	if !ok {
		return seeded, nil
	}
	if improved, best := s.run(seeded); improved {
		return best, nil
	}
	return seeded, nil
}

// batchEdge is one DAG edge in the deterministic evaluation order.
type batchEdge struct {
	from, to string
	w        float64
}

// batchDep is one neighbor of a component, in sorted-name order. Keeping the
// dependency list as a slice (not the Neighbors map) pins the floating-point
// accumulation order, so scores are bit-identical across runs.
type batchDep struct {
	name string
	w    float64
}

// batchState is one joint assignment on the frontier, with its canonical key
// and score breakdown.
type batchState struct {
	assign  Assignment
	key     string
	score   float64
	netFrac float64 // satisfiable fraction of total DAG edge bandwidth
	balance float64 // 1 − max node resource utilization after placement
}

// batchSearch carries the immutable context of one search: the DAG views,
// node capacities, budget, frontier, and memoised path queries.
type batchSearch struct {
	cfg       BatchConfig
	pathAvail PathQuery
	rec       Recorder
	rng       *rand.Rand

	g          *dag.Graph
	comps      []string
	movable    []string // unpinned components, heaviest total edge bandwidth first
	compByName map[string]*dag.Component
	edges      []batchEdge
	totalW     float64
	deps       map[string][]batchDep

	nodes      []NodeInfo
	nodeByName map[string]int

	budget   int
	frontier []batchState
	seen     map[string]bool
	pathMemo map[string]float64

	// scratch buffers reused across eval calls.
	usedCPU, usedMem []float64
}

func newBatchSearch(g *dag.Graph, nodes []NodeInfo, cfg BatchConfig, pathAvail PathQuery, rec Recorder) (*batchSearch, bool) {
	s := &batchSearch{
		cfg:        cfg,
		pathAvail:  pathAvail,
		rec:        rec,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		g:          g,
		comps:      g.Components(),
		compByName: make(map[string]*dag.Component),
		deps:       make(map[string][]batchDep),
		nodes:      nodes,
		nodeByName: make(map[string]int, len(nodes)),
		budget:     cfg.MoveBudget,
		seen:       make(map[string]bool),
		pathMemo:   make(map[string]float64),
		usedCPU:    make([]float64, len(nodes)),
		usedMem:    make([]float64, len(nodes)),
	}
	for i, n := range nodes {
		s.nodeByName[n.Name] = i
	}
	totalBW := make(map[string]float64, len(s.comps))
	for _, name := range s.comps {
		comp, err := g.Component(name)
		if err != nil {
			return nil, false
		}
		s.compByName[name] = comp
		for _, e := range g.Out(name) {
			s.edges = append(s.edges, batchEdge{from: name, to: e.To, w: e.BandwidthMbps})
			s.totalW += e.BandwidthMbps
		}
		var dl []batchDep
		for dep, w := range g.Neighbors(name) {
			dl = append(dl, batchDep{name: dep, w: w})
			totalBW[name] += w
		}
		sort.Slice(dl, func(i, j int) bool { return dl[i].name < dl[j].name })
		s.deps[name] = dl
		if !comp.Pinned() {
			s.movable = append(s.movable, name)
		}
	}
	sort.Slice(s.edges, func(i, j int) bool {
		if s.edges[i].from != s.edges[j].from {
			return s.edges[i].from < s.edges[j].from
		}
		return s.edges[i].to < s.edges[j].to
	})
	// Heaviest communicators first: their placement moves the objective most,
	// so the budget is spent where it pays.
	sort.SliceStable(s.movable, func(i, j int) bool {
		if totalBW[s.movable[i]] != totalBW[s.movable[j]] {
			return totalBW[s.movable[i]] > totalBW[s.movable[j]]
		}
		return s.movable[i] < s.movable[j]
	})
	return s, len(s.movable) > 0 && len(s.nodes) > 1
}

// avail memoises the path oracle per node pair within one search.
func (s *batchSearch) avail(from, to string) float64 {
	key := from + "\x00" + to
	if v, ok := s.pathMemo[key]; ok {
		return v
	}
	v := s.pathAvail(from, to)
	s.pathMemo[key] = v
	return v
}

// eval scores one joint assignment: capacity feasibility as a hard
// constraint, then score = netFrac + ComputeWeight·balance. netFrac is the
// fraction of total DAG edge bandwidth the placement can satisfy — local
// edges in full, remote edges capped at the path oracle's spare capacity
// (DependencyUsage's satisfiable-bandwidth rule applied jointly). balance is
// one minus the worst node's resource utilization after placement. All
// accumulation walks deterministic slices, so equal assignments score
// bit-identically.
func (s *batchSearch) eval(a Assignment) (batchState, bool) {
	for i := range s.nodes {
		s.usedCPU[i], s.usedMem[i] = 0, 0
	}
	for _, name := range s.comps {
		idx, ok := s.nodeByName[a[name]]
		if !ok {
			continue // pinned to an external host; no schedulable capacity used
		}
		comp := s.compByName[name]
		s.usedCPU[idx] += comp.CPU
		s.usedMem[idx] += comp.MemoryMB
	}
	const eps = 1e-9
	worst := 0.0
	for i, n := range s.nodes {
		if s.usedCPU[i] > n.FreeCPU+eps || s.usedMem[i] > n.FreeMemoryMB+eps {
			return batchState{}, false
		}
		if n.TotalCPU > 0 {
			if frac := (n.TotalCPU - n.FreeCPU + s.usedCPU[i]) / n.TotalCPU; frac > worst {
				worst = frac
			}
		}
		if n.TotalMemoryMB > 0 {
			if frac := (n.TotalMemoryMB - n.FreeMemoryMB + s.usedMem[i]) / n.TotalMemoryMB; frac > worst {
				worst = frac
			}
		}
	}
	st := batchState{assign: a, key: jointKey(s.comps, a), balance: 1 - math.Min(worst, 1)}
	sat := 0.0
	for _, e := range s.edges {
		an, bn := a[e.from], a[e.to]
		switch {
		case an == bn:
			sat += e.w
		case s.pathAvail == nil:
			sat += e.w
		default:
			if avail := s.avail(an, bn); avail < e.w {
				if avail > 0 {
					sat += avail
				}
			} else {
				sat += e.w
			}
		}
	}
	st.netFrac = 1.0
	if s.totalW > 0 {
		st.netFrac = sat / s.totalW
	}
	st.score = st.netFrac + s.cfg.ComputeWeight*st.balance
	return st, true
}

// jointKey canonicalises an assignment for frontier deduplication and
// deterministic tie-breaking.
func jointKey(comps []string, a Assignment) string {
	var sb strings.Builder
	for _, c := range comps {
		sb.WriteString(c)
		sb.WriteByte('=')
		sb.WriteString(a[c])
		sb.WriteByte(';')
	}
	return sb.String()
}

// insert adds st to the k-best frontier if it is new, keeping the frontier
// sorted by score (ties by key) and trimmed to K. Reports whether the
// frontier changed.
func (s *batchSearch) insert(st batchState) bool {
	if s.seen[st.key] {
		return false
	}
	s.seen[st.key] = true
	s.frontier = append(s.frontier, st)
	sort.SliceStable(s.frontier, func(i, j int) bool {
		if s.frontier[i].score != s.frontier[j].score {
			return s.frontier[i].score > s.frontier[j].score
		}
		return s.frontier[i].key < s.frontier[j].key
	})
	if len(s.frontier) > s.cfg.K {
		s.frontier = s.frontier[:s.cfg.K]
	}
	for i := range s.frontier {
		if s.frontier[i].key == st.key {
			return true
		}
	}
	return false
}

// run executes the anytime search from the greedy seed and reports whether a
// strictly better joint assignment was found (and which).
func (s *batchSearch) run(seeded Assignment) (bool, Assignment) {
	seedState, ok := s.eval(seeded.Clone())
	if !ok {
		// The seed never violates capacity; if bookkeeping disagrees, defer
		// to the seed rather than search from an inconsistent base.
		return false, nil
	}
	s.seen[seedState.key] = true
	s.frontier = []batchState{seedState}
	for s.budget > 0 {
		changed := false
		base := append([]batchState(nil), s.frontier...)
		for _, st := range base {
			if s.budget <= 0 {
				break
			}
			if s.expand(st) {
				changed = true
			}
		}
		if !changed {
			break // local optimum under the move set: stop early, keep budget
		}
	}
	best := s.frontier[0]
	improved := best.score > seedState.score+batchEps*math.Max(math.Abs(seedState.score), 1)
	if s.rec != nil {
		greedyRej, batchRej := RejectOutscored, RejectNone
		chosen := "batch"
		if !improved {
			greedyRej, batchRej = RejectNone, RejectOutscored
			chosen = "greedy"
		}
		// Pseudo-candidates: LocalMbps carries the network fraction and
		// RemoteMbps the balance term of each joint score.
		s.rec.RecordExplanation(Explanation{
			Kind: ChoiceBatch, Component: "joint", Chosen: chosen,
			Candidates: []CandidateScore{
				{Node: "greedy", Feasible: true, Score: seedState.score,
					LocalMbps: seedState.netFrac, RemoteMbps: seedState.balance, Rejection: greedyRej},
				{Node: "batch", Feasible: true, Score: best.score,
					LocalMbps: best.netFrac, RemoteMbps: best.balance, Rejection: batchRej},
			},
		})
	}
	if !improved {
		return false, nil
	}
	return true, best.assign
}

// expand probes every relocate and swap move around st, spending budget per
// joint evaluation, and reports whether any probe changed the frontier.
func (s *batchSearch) expand(st batchState) bool {
	changed := false
	for _, comp := range s.movable {
		if s.budget <= 0 {
			break
		}
		current := st.assign[comp]
		targets := s.relocationTargets(comp, st.assign, current)
		var rows []CandidateScore
		bestScore, bestTarget := st.score, ""
		for _, target := range targets {
			if s.budget <= 0 {
				break
			}
			s.budget--
			next := st.assign.Clone()
			next[comp] = target
			cand, feasible := s.eval(next)
			if s.rec != nil {
				row := CandidateScore{Node: target, Feasible: feasible, Rejection: RejectNoCapacity}
				if feasible {
					row.Score, row.LocalMbps, row.RemoteMbps = cand.score, cand.netFrac, cand.balance
					row.Rejection = RejectOutscored
				}
				rows = append(rows, row)
			}
			if !feasible {
				continue
			}
			if s.insert(cand) {
				changed = true
			}
			if cand.score > bestScore+batchEps {
				bestScore, bestTarget = cand.score, target
			}
		}
		if s.rec != nil && len(rows) > 0 {
			for i := range rows {
				if rows[i].Node == bestTarget {
					rows[i].Rejection = RejectNone
				}
			}
			s.rec.RecordExplanation(Explanation{
				Kind: ChoiceBatch, Component: comp, Current: current,
				Chosen: bestTarget, Candidates: rows,
			})
		}
	}
	// Swap probes: exchange the endpoints of cross-node edges between movable
	// components — the move relocations cannot express in one step.
	for _, e := range s.edges {
		if s.budget <= 0 {
			break
		}
		if !s.isMovable(e.from) || !s.isMovable(e.to) {
			continue
		}
		nf, nt := st.assign[e.from], st.assign[e.to]
		if nf == nt {
			continue
		}
		s.budget--
		next := st.assign.Clone()
		next[e.from], next[e.to] = nt, nf
		cand, feasible := s.eval(next)
		if feasible && s.insert(cand) {
			changed = true
		}
		if s.rec != nil {
			row := CandidateScore{Node: nt, Feasible: feasible, Rejection: RejectNoCapacity}
			if feasible {
				row.Score, row.LocalMbps, row.RemoteMbps = cand.score, cand.netFrac, cand.balance
				if cand.score > st.score+batchEps {
					row.Rejection = RejectNone
				} else {
					row.Rejection = RejectOutscored
				}
			}
			s.rec.RecordExplanation(Explanation{
				Kind: ChoiceBatch, Component: e.from + "<->" + e.to, Current: nf,
				Chosen: rowChosen(row), Candidates: []CandidateScore{row},
			})
		}
	}
	return changed
}

func rowChosen(row CandidateScore) string {
	if row.Rejection == RejectNone {
		return row.Node
	}
	return ""
}

func (s *batchSearch) isMovable(comp string) bool {
	c, ok := s.compByName[comp]
	return ok && !c.Pinned()
}

// relocationTargets ranks candidate hosts for comp under the current joint
// assignment, Selimi-style: every other node is scored by the bandwidth it
// could satisfy toward comp's placed DAG neighbors (local edges in full,
// remote edges capped at the path oracle's spare capacity — the same
// satisfiable-bandwidth rule migration scoring uses), and the top
// Neighborhood nodes are kept, plus up to two seeded-random extras so the
// search can escape bandwidth-local optima.
func (s *batchSearch) relocationTargets(comp string, a Assignment, current string) []string {
	deps := s.deps[comp]
	type scored struct {
		name string
		sat  float64
	}
	ranked := make([]scored, 0, len(s.nodes))
	for _, n := range s.nodes {
		if n.Name == current {
			continue
		}
		sat := 0.0
		for _, d := range deps {
			depNode, placed := a[d.name]
			if !placed {
				continue
			}
			if depNode == n.Name || s.pathAvail == nil {
				sat += d.w
				continue
			}
			if avail := s.avail(n.Name, depNode); avail < d.w {
				if avail > 0 {
					sat += avail
				}
			} else {
				sat += d.w
			}
		}
		ranked = append(ranked, scored{name: n.Name, sat: sat})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].sat != ranked[j].sat {
			return ranked[i].sat > ranked[j].sat
		}
		return ranked[i].name < ranked[j].name
	})
	limit := s.cfg.Neighborhood
	if limit > len(ranked) {
		limit = len(ranked)
	}
	out := make([]string, 0, limit+2)
	for _, r := range ranked[:limit] {
		out = append(out, r.name)
	}
	for extra := 0; extra < 2 && limit+extra < len(ranked); extra++ {
		rest := ranked[limit+extra:]
		pick := s.rng.Intn(len(rest))
		rest[0], rest[pick] = rest[pick], rest[0]
		out = append(out, rest[0].name)
	}
	return out
}

// Compile-time interface checks.
var (
	_ Policy           = (*Batch)(nil)
	_ ExplainingPolicy = (*Batch)(nil)
)
