// Package scheduler implements the BASS scheduling heuristics (§3 of the
// paper): component ordering by modified breadth-first traversal (Algorithm
// 1) and by bandwidth-weighted longest paths (Algorithm 2), node ranking and
// greedy packing (§3.2.1), migration candidate selection (Algorithm 3), and
// a k3s-default-like baseline scheduler for comparison.
//
// Pseudocode fidelity notes. The paper's Algorithm 1 sorts the queue by a
// cumulative path weight, but both its prose ("we sort the yet unexplored
// components by the edge bandwidth to the currently explored component") and
// its worked example (Fig 6, ordering 1,3,2,4,5,7,6) correspond to a
// best-first traversal prioritised by the bandwidth of the discovering edge;
// we implement that, and TestFig6Ordering pins the published example.
// Algorithm 3's pseudocode returns the pre-deduplication list; we return the
// deduplicated one, matching the prose ("by migrating only one component of
// the dependency pair, we avoid cascading effects") and Table 1.
package scheduler

import (
	"fmt"
	"math"
	"sort"

	"bass/internal/dag"
)

// weightEps is the relative tolerance under which two path-weight sums count
// as equal. Path weights are sums of float64 BandwidthMbps values, so equally
// heavy paths can differ in the last ULPs depending on the order edges were
// accumulated; treating that noise as a strict ordering made chain extraction
// platform- and insertion-order-sensitive.
const weightEps = 1e-9

// Heuristic selects a component-ordering strategy.
type Heuristic int

// Supported ordering heuristics. The developer picks the one suited to the
// application's data flow: BFS for high fan-out graphs, longest-path for
// deep pipelines (§3.2.1) — or HeuristicAuto, which inspects the graph and
// picks per application (§8 lists combining the heuristics as future work).
const (
	HeuristicBFS Heuristic = iota + 1
	HeuristicLongestPath
	HeuristicAuto
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicBFS:
		return "bfs"
	case HeuristicLongestPath:
		return "longest-path"
	case HeuristicAuto:
		return "auto"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// ParseHeuristic resolves a heuristic by name ("bfs", "longest-path", or
// "auto").
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "bfs":
		return HeuristicBFS, nil
	case "longest-path", "longestpath", "lp":
		return HeuristicLongestPath, nil
	case "auto":
		return HeuristicAuto, nil
	default:
		return 0, fmt.Errorf("scheduler: unknown heuristic %q", s)
	}
}

// ChooseHeuristic implements HeuristicAuto's decision (§8): compare the
// bandwidth concentrated at fan-out points (the sum of out-edge weights of
// vertices with two or more consumers) against the bandwidth of the single
// heaviest path. Fan-out-dominated graphs (an SFU, a publisher feeding many
// consumers) get BFS, which co-locates consumers with their producer;
// chain-dominated graphs (frontend→service→cache→database pipelines) get
// longest-path.
func ChooseHeuristic(g *dag.Graph) (Heuristic, error) {
	chains, err := LongestPathChains(g)
	if err != nil {
		return 0, err
	}
	var chainWeight float64
	if len(chains) > 0 {
		chain := chains[0]
		for i := 0; i+1 < len(chain); i++ {
			chainWeight += g.Weight(chain[i], chain[i+1])
		}
	}
	var fanWeight float64
	for _, name := range g.Components() {
		out := g.Out(name)
		if len(out) < 2 {
			continue
		}
		for _, e := range out {
			fanWeight += e.BandwidthMbps
		}
	}
	if fanWeight > chainWeight {
		return HeuristicBFS, nil
	}
	return HeuristicLongestPath, nil
}

// Order returns the component placement order under the given heuristic.
func Order(g *dag.Graph, h Heuristic) ([]string, error) {
	if h == HeuristicAuto {
		chosen, err := ChooseHeuristic(g)
		if err != nil {
			return nil, err
		}
		h = chosen
	}
	switch h {
	case HeuristicBFS:
		return BFSOrder(g)
	case HeuristicLongestPath:
		chains, err := LongestPathChains(g)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, chain := range chains {
			out = append(out, chain...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("scheduler: unknown heuristic %v", h)
	}
}

// BFSOrder implements Algorithm 1: starting from the topologically first
// component, explore edges in decreasing bandwidth order, keeping the
// frontier sorted by the bandwidth of each component's discovering edge.
// Disconnected remainders are traversed from the next unvisited component in
// topological order, so every component appears exactly once.
func BFSOrder(g *dag.Graph) ([]string, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	topoPos := make(map[string]int, len(topo))
	for i, name := range topo {
		topoPos[name] = i
	}

	visited := make(map[string]bool, len(topo))
	order := make([]string, 0, len(topo))

	type entry struct {
		name   string
		weight float64 // bandwidth of the edge that discovered the component
	}
	var queue []entry

	push := func(e entry) {
		visited[e.name] = true
		queue = append(queue, e)
		// Keep the frontier sorted: heaviest discovering edge first, ties by
		// topological position for determinism.
		sort.SliceStable(queue, func(i, j int) bool {
			if queue[i].weight != queue[j].weight {
				return queue[i].weight > queue[j].weight
			}
			return topoPos[queue[i].name] < topoPos[queue[j].name]
		})
	}

	for _, source := range topo {
		if visited[source] {
			continue
		}
		push(entry{name: source, weight: 0})
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur.name)
			deps := g.Out(cur.name)
			// Explore edges in decreasing bandwidth order.
			sort.SliceStable(deps, func(i, j int) bool {
				if deps[i].BandwidthMbps != deps[j].BandwidthMbps {
					return deps[i].BandwidthMbps > deps[j].BandwidthMbps
				}
				return topoPos[deps[i].To] < topoPos[deps[j].To]
			})
			for _, e := range deps {
				if !visited[e.To] {
					push(entry{name: e.To, weight: e.BandwidthMbps})
				}
			}
		}
	}
	return order, nil
}

// LongestPathChains implements Algorithm 2: repeatedly extract the most
// bandwidth-intensive (maximum edge-weight sum) path among unvisited
// components, starting from the earliest unvisited component in topological
// order. Each returned chain is a root-to-leaf path whose components should
// be co-located when possible.
func LongestPathChains(g *dag.Graph) ([][]string, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	topoPos := make(map[string]int, len(topo))
	for i, name := range topo {
		topoPos[name] = i
	}

	visited := make(map[string]bool, len(topo))
	var chains [][]string

	for processed := 0; processed < len(topo); {
		// Next start: earliest unvisited component in topological order.
		start := ""
		for _, name := range topo {
			if !visited[name] {
				start = name
				break
			}
		}
		chain := longestPathFrom(g, topo, topoPos, start, visited)
		for _, name := range chain {
			visited[name] = true
		}
		processed += len(chain)
		chains = append(chains, chain)
	}
	return chains, nil
}

// longestPathFrom computes the maximum-weight path from start over unvisited
// components via dynamic programming in topological order.
func longestPathFrom(g *dag.Graph, topo []string, topoPos map[string]int, start string, visited map[string]bool) []string {
	const unreachable = -1.0
	dist := make(map[string]float64, len(topo))
	parent := make(map[string]string, len(topo))
	for _, name := range topo {
		dist[name] = unreachable
	}
	dist[start] = 0

	for _, name := range topo {
		if visited[name] || dist[name] == unreachable {
			continue
		}
		for _, e := range g.Out(name) {
			if visited[e.To] {
				continue
			}
			cand := dist[name] + e.BandwidthMbps
			// Distances are sums of BandwidthMbps, so two equally-heavy paths
			// can differ in the last few ULPs depending on summation order.
			// Compare with a relative epsilon: clearly heavier wins, and
			// anything inside the band is a tie resolved by the documented
			// earlier-topo-parent rule — including when the incumbent has no
			// recorded parent yet. Exact float equality here made "ties"
			// platform- and order-sensitive and skipped parentless incumbents.
			delta := cand - dist[e.To]
			scale := math.Abs(cand)
			if a := math.Abs(dist[e.To]); a > scale {
				scale = a
			}
			if scale < 1 {
				scale = 1
			}
			better := delta > weightEps*scale
			if !better && delta >= -weightEps*scale {
				// Tie: earlier-topo parent wins.
				if p, ok := parent[e.To]; !ok || topoPos[name] < topoPos[p] {
					better = true
				}
			}
			if better {
				dist[e.To] = cand
				parent[e.To] = name
			}
		}
	}

	// Backtrack from the farthest reachable leaf.
	best := start
	for _, name := range topo {
		if visited[name] || dist[name] == unreachable {
			continue
		}
		if dist[name] > dist[best] {
			best = name
		}
	}
	var rev []string
	for cur := best; ; {
		rev = append(rev, cur)
		p, ok := parent[cur]
		if !ok || cur == start {
			break
		}
		cur = p
	}
	chain := make([]string, len(rev))
	for i, name := range rev {
		chain[len(rev)-1-i] = name
	}
	return chain
}

// LongestPathOrder flattens LongestPathChains into a single placement order.
func LongestPathOrder(g *dag.Graph) ([]string, error) {
	chains, err := LongestPathChains(g)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, chain := range chains {
		out = append(out, chain...)
	}
	return out, nil
}
