package scheduler

import (
	"testing"

	"bass/internal/dag"
)

// fanOutGraph models an SFU-like producer feeding many consumers.
func fanOutGraph() *dag.Graph {
	g := dag.NewGraph("fan")
	g.MustAddComponent(dag.Component{Name: "hub", CPU: 2})
	for _, name := range []string{"c1", "c2", "c3", "c4"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1})
		g.MustAddEdge("hub", name, 5)
	}
	return g
}

// pipelineGraph models a frontend→service→cache→database chain.
func pipelineGraph() *dag.Graph {
	g := dag.NewGraph("pipe")
	chain := []string{"front", "svc", "cache", "db"}
	for _, name := range chain {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1})
	}
	for i := 0; i+1 < len(chain); i++ {
		g.MustAddEdge(chain[i], chain[i+1], 10)
	}
	// A light side branch so the graph is not a pure path.
	g.MustAddComponent(dag.Component{Name: "trace", CPU: 0.5})
	g.MustAddEdge("front", "trace", 0.5)
	return g
}

func TestChooseHeuristic(t *testing.T) {
	h, err := ChooseHeuristic(fanOutGraph())
	if err != nil {
		t.Fatal(err)
	}
	if h != HeuristicBFS {
		t.Errorf("fan-out graph chose %v, want bfs", h)
	}
	h, err = ChooseHeuristic(pipelineGraph())
	if err != nil {
		t.Fatal(err)
	}
	if h != HeuristicLongestPath {
		t.Errorf("pipeline graph chose %v, want longest-path", h)
	}
}

func TestAutoOrderDelegates(t *testing.T) {
	g := fanOutGraph()
	auto, err := Order(g, HeuristicAuto)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := Order(g, HeuristicBFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(bfs) {
		t.Fatalf("auto order %v vs bfs %v", auto, bfs)
	}
	for i := range auto {
		if auto[i] != bfs[i] {
			t.Fatalf("auto order %v differs from bfs %v", auto, bfs)
		}
	}
}

func TestAutoScheduleWorks(t *testing.T) {
	sched := NewBass(HeuristicAuto)
	if sched.Name() != "bass-auto" {
		t.Errorf("Name = %q", sched.Name())
	}
	for _, g := range []*dag.Graph{fanOutGraph(), pipelineGraph()} {
		got, err := sched.Schedule(g, testNodes())
		if err != nil {
			t.Fatalf("%s: %v", g.AppName, err)
		}
		if len(got) != g.NumComponents() {
			t.Errorf("%s: placed %d of %d", g.AppName, len(got), g.NumComponents())
		}
	}
}

func TestParseHeuristicAuto(t *testing.T) {
	h, err := ParseHeuristic("auto")
	if err != nil || h != HeuristicAuto {
		t.Errorf("ParseHeuristic(auto) = %v, %v", h, err)
	}
	if HeuristicAuto.String() != "auto" {
		t.Errorf("String = %q", HeuristicAuto.String())
	}
}
