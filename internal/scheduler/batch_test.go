package scheduler

import (
	"reflect"
	"testing"

	"bass/internal/dag"
)

// batchTriangle builds the canonical batch-beats-greedy scenario: src pinned
// to a, dst pinned to c, one movable mid. The a–c path is nearly dead while
// a–b and b–c are wide, so joint scoring must pull mid onto the relay node b
// — a placement the path-oblivious greedy packer cannot find.
func batchTriangle(t testing.TB) *dag.Graph {
	t.Helper()
	g := dag.NewGraph("tri")
	g.MustAddComponent(dag.Component{Name: "src", CPU: 0.1, Labels: dag.Pin("a")})
	g.MustAddComponent(dag.Component{Name: "mid", CPU: 0.1})
	g.MustAddComponent(dag.Component{Name: "dst", CPU: 0.1, Labels: dag.Pin("c")})
	g.MustAddEdge("src", "mid", 10)
	g.MustAddEdge("mid", "dst", 10)
	return g
}

func batchTriangleNodes() []NodeInfo {
	return []NodeInfo{
		{Name: "a", FreeCPU: 4, FreeMemoryMB: 4096, TotalCPU: 4, TotalMemoryMB: 4096, LinkCapacityMbps: 100},
		{Name: "b", FreeCPU: 4, FreeMemoryMB: 4096, TotalCPU: 4, TotalMemoryMB: 4096, LinkCapacityMbps: 100},
		{Name: "c", FreeCPU: 4, FreeMemoryMB: 4096, TotalCPU: 4, TotalMemoryMB: 4096, LinkCapacityMbps: 100},
	}
}

// trianglePaths is a PathQuery where only the a–c path is (nearly) dead.
func trianglePaths(from, to string) float64 {
	if from == to {
		return 100000
	}
	if (from == "a" && to == "c") || (from == "c" && to == "a") {
		return 1
	}
	return 100
}

func TestBatchZeroBudgetIsSeedExactly(t *testing.T) {
	g := batchTriangle(t)
	nodes := batchTriangleNodes()
	seed := NewBass(HeuristicLongestPath)
	batch := NewBatch(seed, BatchConfig{MoveBudget: 0, Seed: 7})
	batch.SetPathQuery(trianglePaths)

	if batch.Name() != seed.Name() {
		t.Errorf("zero-budget Name() = %q, want seed name %q", batch.Name(), seed.Name())
	}

	var greedyRec, batchRec captureRecorder
	want, err := seed.ScheduleExplained(g, nodes, &greedyRec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batch.ScheduleExplained(g, nodes, &batchRec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-budget assignment = %v, want greedy %v", got, want)
	}
	if !reflect.DeepEqual(batchRec.explanations, greedyRec.explanations) {
		t.Errorf("zero-budget explanations diverge from greedy:\n%+v\nvs\n%+v",
			batchRec.explanations, greedyRec.explanations)
	}
}

func TestBatchRelocatesOntoRelayNode(t *testing.T) {
	g := batchTriangle(t)
	batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
	batch.SetPathQuery(trianglePaths)

	greedy, err := NewBass(HeuristicLongestPath).Schedule(g, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	if greedy["mid"] == "b" {
		t.Fatalf("test premise broken: greedy already found the relay (%v)", greedy)
	}

	got, err := batch.Schedule(g, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	if got["mid"] != "b" {
		t.Errorf("batch placed mid on %q, want relay b (assignment %v)", got["mid"], got)
	}
	if got["src"] != "a" || got["dst"] != "c" {
		t.Errorf("batch moved pinned components: %v", got)
	}
	if batch.Name() != "batch-bass-longest-path" {
		t.Errorf("Name() = %q", batch.Name())
	}
}

func TestBatchDeterministicAcrossRuns(t *testing.T) {
	for run := 0; run < 5; run++ {
		g := batchTriangle(t)
		batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
		batch.SetPathQuery(trianglePaths)
		var rec captureRecorder
		got, err := batch.ScheduleExplained(g, batchTriangleNodes(), &rec)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			continue
		}
		// Compare against a fresh second evaluation within the same run
		// boundary: all runs must agree byte-for-byte.
		g2 := batchTriangle(t)
		batch2 := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
		batch2.SetPathQuery(trianglePaths)
		var rec2 captureRecorder
		got2, err := batch2.ScheduleExplained(g2, batchTriangleNodes(), &rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("run %d: assignments diverge: %v vs %v", run, got, got2)
		}
		if !reflect.DeepEqual(rec.explanations, rec2.explanations) {
			t.Fatalf("run %d: explanations diverge", run)
		}
	}
}

func TestBatchRecordsSearchAndVerdict(t *testing.T) {
	g := batchTriangle(t)
	batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
	batch.SetPathQuery(trianglePaths)
	var rec captureRecorder
	if _, err := batch.ScheduleExplained(g, batchTriangleNodes(), &rec); err != nil {
		t.Fatal(err)
	}
	var sawSchedule, sawScan, sawVerdict bool
	for _, ex := range rec.explanations {
		switch ex.Kind {
		case ChoiceSchedule:
			sawSchedule = true
		case ChoiceBatch:
			if ex.Component == "joint" {
				sawVerdict = true
				if len(ex.Candidates) != 2 {
					t.Errorf("verdict has %d candidates, want greedy+batch", len(ex.Candidates))
				}
				if ex.Chosen != "batch" {
					t.Errorf("verdict chose %q, want batch (it strictly improves here)", ex.Chosen)
				}
				for _, cs := range ex.Candidates {
					if cs.Node == "batch" && cs.Rejection != RejectNone {
						t.Errorf("winning batch row has rejection %q", cs.Rejection)
					}
					if cs.Node == "greedy" && cs.Rejection != RejectOutscored {
						t.Errorf("greedy row has rejection %q, want outscored", cs.Rejection)
					}
				}
			} else {
				sawScan = true
			}
		}
	}
	if !sawSchedule {
		t.Error("no seed ChoiceSchedule explanations recorded")
	}
	if !sawScan {
		t.Error("no ChoiceBatch relocation-scan explanations recorded")
	}
	if !sawVerdict {
		t.Error("no final greedy-vs-batch verdict recorded")
	}
	// The verdict must be the last explanation: the search narrative ends
	// with its conclusion.
	last := rec.explanations[len(rec.explanations)-1]
	if last.Kind != ChoiceBatch || last.Component != "joint" {
		t.Errorf("last explanation is %+v, want the joint verdict", last)
	}
}

func TestBatchRespectsCapacity(t *testing.T) {
	// Node b is the bandwidth-ideal relay but has no CPU headroom: the
	// search must reject the move and keep the greedy placement.
	g := batchTriangle(t)
	nodes := batchTriangleNodes()
	for i := range nodes {
		if nodes[i].Name == "b" {
			nodes[i].FreeCPU = 0.05
		}
	}
	batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
	batch.SetPathQuery(trianglePaths)
	got, err := batch.Schedule(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if got["mid"] == "b" {
		t.Errorf("batch placed mid on b despite insufficient CPU: %v", got)
	}
}

func TestBatchTinyBudgetStillValid(t *testing.T) {
	// An anytime budget of 1 evaluates a single joint candidate; whatever it
	// finds, the result must be a complete assignment over all components.
	g := batchTriangle(t)
	batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 1, Seed: 7})
	batch.SetPathQuery(trianglePaths)
	got, err := batch.Schedule(g, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range g.Components() {
		if got[comp] == "" {
			t.Errorf("component %q unassigned under budget 1: %v", comp, got)
		}
	}
}

func TestBatchNilPathQueryBalancesCompute(t *testing.T) {
	// Without a path oracle every remote edge scores at full demand, so the
	// network term is constant and the search optimizes compute balance
	// alone: mid moves off src's node onto the empty one. With the compute
	// term disabled too, the objective is flat and the greedy seed survives.
	g := batchTriangle(t)
	batch := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7})
	got, err := batch.Schedule(g, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	if got["mid"] != "b" {
		t.Errorf("nil-oracle batch should balance compute onto b, got %v", got)
	}

	g2 := batchTriangle(t)
	flat := NewBatch(NewBass(HeuristicLongestPath), BatchConfig{MoveBudget: 64, Seed: 7, ComputeWeight: -1})
	greedy, err := NewBass(HeuristicLongestPath).Schedule(g2, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := flat.Schedule(g2, batchTriangleNodes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, greedy) {
		t.Errorf("flat-objective batch diverged from greedy: %v vs %v", got2, greedy)
	}
}

func TestBatchDefaultSeedPolicy(t *testing.T) {
	b := NewBatch(nil, BatchConfig{MoveBudget: 4})
	if b.Name() != "batch-bass-longest-path" {
		t.Errorf("default seed Name() = %q", b.Name())
	}
	cfg := b.Config()
	if cfg.K != 4 || cfg.Neighborhood != 8 || cfg.ComputeWeight != 0.25 {
		t.Errorf("defaults = %+v", cfg)
	}
	pure := NewBatch(nil, BatchConfig{MoveBudget: 4, ComputeWeight: -1})
	if pure.Config().ComputeWeight != 0 {
		t.Errorf("negative ComputeWeight should mean pure network objective, got %v", pure.Config().ComputeWeight)
	}
}
