package scheduler

import (
	"errors"
	"reflect"
	"testing"

	"bass/internal/dag"
)

func pairGraph(t testing.TB) *dag.Graph {
	t.Helper()
	g := dag.NewGraph("pair")
	g.MustAddComponent(dag.Component{Name: "producer", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "consumer", CPU: 1})
	g.MustAddEdge("producer", "consumer", 8)
	return g
}

func TestFindMigrationCandidatesGoodputFloor(t *testing.T) {
	// Fig 8's scenario: an 8 Mbps pair achieves only 3 Mbps because the
	// link degraded, and the link has no headroom left.
	g := pairGraph(t)
	cfg := MigrationConfig{UtilizationThreshold: 0.5, GoodputFloor: 0.5, HeadroomMbps: 4}
	usages := []DependencyUsage{{
		Component:         "producer",
		Dep:               "consumer",
		RequiredMbps:      8,
		AchievedMbps:      3,
		PathCapacityMbps:  7,
		PathAvailableMbps: 1,
	}}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	if len(report.Candidates) != 1 {
		t.Fatalf("candidates = %v, want exactly one of the pair", report.Candidates)
	}
	if len(report.Violating) != 2 {
		t.Errorf("violating = %v, want both endpoints", report.Violating)
	}
}

func TestFindMigrationCandidatesUtilizationTrigger(t *testing.T) {
	// Algorithm 3's scenario: the pair uses most of its quota and the link
	// cannot also hold the headroom.
	g := pairGraph(t)
	cfg := MigrationConfig{UtilizationThreshold: 0.65, GoodputFloor: 0, HeadroomMbps: 4}
	usages := []DependencyUsage{{
		Component:         "producer",
		Dep:               "consumer",
		RequiredMbps:      8,
		AchievedMbps:      7,
		PathCapacityMbps:  10, // 7 + 4 > 10: headroom squeezed
		PathAvailableMbps: 3,
	}}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	if len(report.Candidates) != 1 {
		t.Fatalf("candidates = %v, want one", report.Candidates)
	}
}

func TestFindMigrationCandidatesHealthyPair(t *testing.T) {
	g := pairGraph(t)
	cfg := DefaultMigrationConfig()
	usages := []DependencyUsage{{
		Component:         "producer",
		Dep:               "consumer",
		RequiredMbps:      8,
		AchievedMbps:      7.5,
		PathCapacityMbps:  25,
		PathAvailableMbps: 15,
	}}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	if len(report.Candidates) != 0 {
		t.Errorf("healthy pair produced candidates %v", report.Candidates)
	}
}

// TestDeadPathReportsViolated pins the degraded-to-zero regression: a path
// whose bottleneck capacity collapsed to (or below) zero used to score
// UtilizationFrac 0 — perfectly healthy — so scenario-1 migration never
// fired even though the pair could move nothing at all.
func TestDeadPathReportsViolated(t *testing.T) {
	tests := []struct {
		name string
		cfg  MigrationConfig
		d    DependencyUsage
		want bool
	}{
		{
			name: "zero capacity, scenario-1-only config",
			cfg:  MigrationConfig{UtilizationThreshold: 0.5, GoodputFloor: 0, HeadroomMbps: 4},
			d: DependencyUsage{RequiredMbps: 8, AchievedMbps: 0,
				PathCapacityMbps: 0, PathAvailableMbps: 0},
			want: true,
		},
		{
			name: "capacity degraded below zero by probe noise",
			cfg:  MigrationConfig{UtilizationThreshold: 0.5, GoodputFloor: 0, HeadroomMbps: 4},
			d: DependencyUsage{RequiredMbps: 8, AchievedMbps: 0,
				PathCapacityMbps: -0.5, PathAvailableMbps: 0},
			want: true,
		},
		{
			name: "zero capacity, goodput-floor-only config",
			cfg:  MigrationConfig{UtilizationThreshold: 0, GoodputFloor: 0.5, HeadroomMbps: 4},
			d: DependencyUsage{RequiredMbps: 8, AchievedMbps: 0,
				PathCapacityMbps: 0, PathAvailableMbps: 0},
			want: true,
		},
		{
			name: "zero capacity but pair needs no bandwidth",
			cfg:  DefaultMigrationConfig(),
			d: DependencyUsage{RequiredMbps: 0, AchievedMbps: 0,
				PathCapacityMbps: 0, PathAvailableMbps: 0},
			want: false,
		},
		{
			name: "zero capacity with migration disabled",
			cfg:  MigrationConfig{UtilizationThreshold: 0, GoodputFloor: 0, HeadroomMbps: 4},
			d: DependencyUsage{RequiredMbps: 8, AchievedMbps: 0,
				PathCapacityMbps: 0, PathAvailableMbps: 0},
			want: false,
		},
		{
			name: "healthy path stays healthy",
			cfg:  DefaultMigrationConfig(),
			d: DependencyUsage{RequiredMbps: 8, AchievedMbps: 7.5,
				PathCapacityMbps: 25, PathAvailableMbps: 15},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.cfg.violated(tt.d); got != tt.want {
				t.Errorf("violated(%+v) = %v, want %v", tt.d, got, tt.want)
			}
		})
	}
}

// TestDeadPathFracsSaturate pins the helper semantics the fix introduced: a
// path with no capacity is fully utilized (1), not idle (0).
func TestDeadPathFracsSaturate(t *testing.T) {
	d := DependencyUsage{RequiredMbps: 8, PathCapacityMbps: 0, PathAvailableMbps: 0}
	if got := d.UtilizationFrac(); got != 1 {
		t.Errorf("UtilizationFrac on dead path = %v, want 1", got)
	}
	if got := d.PathUtilizationFrac(); got != 1 {
		t.Errorf("PathUtilizationFrac on dead path = %v, want 1", got)
	}
	healthy := DependencyUsage{RequiredMbps: 8, AchievedMbps: 4, PathCapacityMbps: 16, PathAvailableMbps: 8}
	if got := healthy.UtilizationFrac(); got != 0.25 {
		t.Errorf("UtilizationFrac = %v, want 0.25", got)
	}
	if got := healthy.PathUtilizationFrac(); got != 0.5 {
		t.Errorf("PathUtilizationFrac = %v, want 0.5", got)
	}
}

// TestFindMigrationCandidatesDeadPath runs the degraded-to-zero case through
// the full Algorithm 3 pass: the pair must surface as violating and produce
// a migration candidate under a scenario-1-only config.
func TestFindMigrationCandidatesDeadPath(t *testing.T) {
	g := pairGraph(t)
	cfg := MigrationConfig{UtilizationThreshold: 0.5, GoodputFloor: 0, HeadroomMbps: 4}
	usages := []DependencyUsage{{
		Component:         "producer",
		Dep:               "consumer",
		RequiredMbps:      8,
		AchievedMbps:      0,
		PathCapacityMbps:  0,
		PathAvailableMbps: 0,
	}}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	if len(report.Candidates) != 1 {
		t.Fatalf("candidates = %v, want one (dead path must trigger migration)", report.Candidates)
	}
	if len(report.Violating) != 2 {
		t.Errorf("violating = %v, want both endpoints", report.Violating)
	}
}

// TestFindMigrationCandidatesDeduplicatesPairs reproduces the paper's
// Table 1 observation: two communicating components both violate, but only
// one of the pair is migrated, avoiding cascading effects.
func TestFindMigrationCandidatesDeduplicatesPairs(t *testing.T) {
	g := dag.NewGraph("chain")
	for _, name := range []string{"a", "b", "c"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1})
	}
	g.MustAddEdge("a", "b", 10)
	g.MustAddEdge("b", "c", 6)
	cfg := MigrationConfig{UtilizationThreshold: 0.5, GoodputFloor: 0.5, HeadroomMbps: 4}
	bad := func(from, to string, req float64) DependencyUsage {
		return DependencyUsage{
			Component: from, Dep: to,
			RequiredMbps: req, AchievedMbps: req * 0.3,
			PathCapacityMbps: 5, PathAvailableMbps: 0.5,
		}
	}
	usages := []DependencyUsage{bad("a", "b", 10), bad("b", "c", 6)}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	// b has the largest total bandwidth (10+6); selecting it must remove its
	// neighbors a and c from the final list.
	if !reflect.DeepEqual(report.Candidates, []string{"b"}) {
		t.Errorf("candidates = %v, want [b]", report.Candidates)
	}
	if len(report.Violating) != 3 {
		t.Errorf("violating = %v, want all three", report.Violating)
	}
}

func TestFindMigrationCandidatesSkipsPinned(t *testing.T) {
	g := dag.NewGraph("conf")
	g.MustAddComponent(dag.Component{Name: "sfu", CPU: 2})
	g.MustAddComponent(dag.Component{Name: "viewer", Labels: dag.Pin("node2")})
	g.MustAddEdge("sfu", "viewer", 10)
	cfg := DefaultMigrationConfig()
	usages := []DependencyUsage{{
		Component: "sfu", Dep: "viewer",
		RequiredMbps: 10, AchievedMbps: 2,
		PathCapacityMbps: 4, PathAvailableMbps: 0.2,
	}}
	report := FindMigrationCandidates(g, usages, cfg, nil)
	if !reflect.DeepEqual(report.Candidates, []string{"sfu"}) {
		t.Errorf("candidates = %v, want only the movable sfu", report.Candidates)
	}
}

func migrationNodes() []NodeInfo {
	return []NodeInfo{
		{Name: "node1", FreeCPU: 8, FreeMemoryMB: 8192},
		{Name: "node2", FreeCPU: 8, FreeMemoryMB: 8192},
		{Name: "node3", FreeCPU: 8, FreeMemoryMB: 8192},
	}
}

func TestChooseMigrationTargetPrefersDependencyNode(t *testing.T) {
	g := dag.NewGraph("app")
	for _, name := range []string{"a", "b", "c"} {
		g.MustAddComponent(dag.Component{Name: name, CPU: 1})
	}
	g.MustAddEdge("a", "b", 5)
	g.MustAddEdge("a", "c", 5)
	assignment := Assignment{"a": "node1", "b": "node2", "c": "node2"}
	avail := func(_, _ string) float64 { return 100 }
	target, err := ChooseMigrationTarget(g, "a", assignment, migrationNodes(), avail, DefaultMigrationConfig())
	if err != nil {
		t.Fatalf("ChooseMigrationTarget: %v", err)
	}
	if target != "node2" {
		t.Errorf("target = %q, want node2 (hosts both dependencies)", target)
	}
}

func TestChooseMigrationTargetRequiresBandwidth(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "a", CPU: 1})
	g.MustAddComponent(dag.Component{Name: "b", CPU: 1})
	g.MustAddEdge("a", "b", 10)
	assignment := Assignment{"a": "node1", "b": "node2"}
	// Only node3 is a candidate (node2 hosts b — moving there co-locates,
	// always fine; make node2 full so bandwidth matters).
	nodes := []NodeInfo{
		{Name: "node1", FreeCPU: 8, FreeMemoryMB: 8192},
		{Name: "node2", FreeCPU: 0, FreeMemoryMB: 8192},
		{Name: "node3", FreeCPU: 8, FreeMemoryMB: 8192},
	}
	cfg := DefaultMigrationConfig() // headroom 4: needs 10+4 on the path
	t.Run("insufficient", func(t *testing.T) {
		avail := func(_, _ string) float64 { return 12 }
		if _, err := ChooseMigrationTarget(g, "a", assignment, nodes, avail, cfg); !errors.Is(err, ErrNoBetterNode) {
			t.Errorf("want ErrNoBetterNode, got %v", err)
		}
	})
	t.Run("sufficient", func(t *testing.T) {
		avail := func(_, _ string) float64 { return 20 }
		target, err := ChooseMigrationTarget(g, "a", assignment, nodes, avail, cfg)
		if err != nil {
			t.Fatalf("ChooseMigrationTarget: %v", err)
		}
		if target != "node3" {
			t.Errorf("target = %q, want node3", target)
		}
	})
}

func TestChooseMigrationTargetRejectsPinned(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "a", CPU: 1, Labels: dag.Pin("node1")})
	assignment := Assignment{"a": "node1"}
	avail := func(_, _ string) float64 { return 100 }
	if _, err := ChooseMigrationTarget(g, "a", assignment, migrationNodes(), avail, DefaultMigrationConfig()); !errors.Is(err, ErrNoBetterNode) {
		t.Errorf("want ErrNoBetterNode for pinned component, got %v", err)
	}
}

func TestChooseMigrationTargetUnknownComponent(t *testing.T) {
	g := dag.NewGraph("app")
	g.MustAddComponent(dag.Component{Name: "a", CPU: 1})
	if _, err := ChooseMigrationTarget(g, "ghost", Assignment{}, migrationNodes(), nil, DefaultMigrationConfig()); err == nil {
		t.Error("want error for unknown component")
	}
}

func BenchmarkFindMigrationCandidates(b *testing.B) {
	g := dag.NewGraph("big")
	const n = 27
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('A' + i))
		g.MustAddComponent(dag.Component{Name: names[i], CPU: 1})
	}
	var usages []DependencyUsage
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(names[i], names[i+1], float64(i+1))
		usages = append(usages, DependencyUsage{
			Component: names[i], Dep: names[i+1],
			RequiredMbps: float64(i + 1), AchievedMbps: 0.3 * float64(i+1),
			PathCapacityMbps: 5, PathAvailableMbps: 0.5,
		})
	}
	cfg := DefaultMigrationConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindMigrationCandidates(g, usages, cfg, nil)
	}
}
