package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantArrival(t *testing.T) {
	c := Constant{PerSecond: 50}
	rng := rand.New(rand.NewSource(1))
	if got := c.Next(rng); got != 20*time.Millisecond {
		t.Errorf("Next = %v, want 20ms", got)
	}
	if got := c.Rate(); got != 50 {
		t.Errorf("Rate = %v", got)
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
	zero := Constant{}
	if got := zero.Next(rng); got < time.Minute {
		t.Errorf("zero-rate gap = %v, want effectively never", got)
	}
}

func TestExponentialArrivalMeanRate(t *testing.T) {
	e := Exponential{MeanPerSecond: 100}
	rng := rand.New(rand.NewSource(7))
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += e.Next(rng)
	}
	meanGap := total.Seconds() / n
	if math.Abs(meanGap-0.01) > 0.001 {
		t.Errorf("mean gap = %.5fs, want ≈0.01s at 100 RPS", meanGap)
	}
	if got := e.Rate(); got != 100 {
		t.Errorf("Rate = %v", got)
	}
	zero := Exponential{}
	if got := zero.Next(rng); got < time.Minute {
		t.Errorf("zero-rate gap = %v", got)
	}
}

// TestExponentialGapsAreMemoryless property-checks positivity and rough
// coefficient-of-variation ≈ 1 (the exponential's signature).
func TestExponentialGapsAreMemoryless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Exponential{MeanPerSecond: 10}
		var sum, sumSq float64
		const n = 5000
		for i := 0; i < n; i++ {
			g := e.Next(rng).Seconds()
			if g < 0 {
				return false
			}
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		cv := math.Sqrt(variance) / mean
		return cv > 0.9 && cv < 1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLatencyRecorderBinning(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	// Two samples in bin 0, one in bin 2.
	r.Observe(100*time.Millisecond, 10*time.Millisecond)
	r.Observe(900*time.Millisecond, 30*time.Millisecond)
	r.Observe(2500*time.Millisecond, 100*time.Millisecond)

	if got := r.Count(); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	series := r.Series()
	pts := series.Points()
	if len(pts) != 2 {
		t.Fatalf("series points = %d, want 2 bins", len(pts))
	}
	if pts[0].At != 0 || math.Abs(pts[0].Value-0.02) > 1e-9 {
		t.Errorf("bin 0 = %+v, want avg 0.02 at t=0", pts[0])
	}
	if pts[1].At != 2*time.Second || pts[1].Value != 0.1 {
		t.Errorf("bin 2 = %+v", pts[1])
	}
	if got := r.Histogram().Max(); got != 0.1 {
		t.Errorf("histogram max = %v", got)
	}
}

func TestLatencyRecorderDefaultBin(t *testing.T) {
	r := NewLatencyRecorder(0)
	r.Observe(0, time.Second)
	if got := r.Series().Len(); got != 1 {
		t.Errorf("series len = %d", got)
	}
}

func TestLatencyRecorderEmptySeries(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	if got := r.Series().Len(); got != 0 {
		t.Errorf("empty recorder series len = %d", got)
	}
}
