// Package workload provides request arrival processes and latency recording
// shared by the example applications: constant and exponential (Poisson)
// arrivals, per-request latency logs, and per-second aggregated series — the
// shapes the BASS paper reports (average latency per second, p99 across a
// run, CDFs).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"bass/internal/metrics"
)

// Arrival generates inter-arrival gaps for a request process.
type Arrival interface {
	// Next returns the gap until the next request.
	Next(rng *rand.Rand) time.Duration
	// Rate reports the mean request rate per second.
	Rate() float64
	// Name labels the process in experiment output.
	Name() string
}

// Constant is a fixed-rate arrival process (the paper's "fixed request
// distribution").
type Constant struct {
	PerSecond float64
}

// Next returns the constant gap 1/rate.
func (c Constant) Next(*rand.Rand) time.Duration {
	if c.PerSecond <= 0 {
		return time.Hour
	}
	return time.Duration(float64(time.Second) / c.PerSecond)
}

// Rate reports the request rate.
func (c Constant) Rate() float64 { return c.PerSecond }

// Name labels the process.
func (c Constant) Name() string { return fmt.Sprintf("constant-%.0frps", c.PerSecond) }

// Exponential is a Poisson arrival process (exponentially distributed
// inter-arrival gaps), "commonly used to model arrival rates" (§6.3.3).
type Exponential struct {
	MeanPerSecond float64
}

// Next draws an exponential gap.
func (e Exponential) Next(rng *rand.Rand) time.Duration {
	if e.MeanPerSecond <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / e.MeanPerSecond * float64(time.Second))
}

// Rate reports the mean request rate.
func (e Exponential) Rate() float64 { return e.MeanPerSecond }

// Name labels the process.
func (e Exponential) Name() string { return fmt.Sprintf("exp-%.0frps", e.MeanPerSecond) }

// Compile-time interface checks.
var (
	_ Arrival = Constant{}
	_ Arrival = Exponential{}
)

// LatencyRecorder accumulates per-request latencies with timestamps.
type LatencyRecorder struct {
	hist    metrics.Histogram
	series  metrics.TimeSeries
	binSize time.Duration

	binStart time.Duration
	binSum   float64
	binCount int
}

// NewLatencyRecorder aggregates per-request samples into bins of the given
// size for the time-series view (the paper plots average latency at every
// second). binSize <= 0 defaults to one second.
func NewLatencyRecorder(binSize time.Duration) *LatencyRecorder {
	if binSize <= 0 {
		binSize = time.Second
	}
	return &LatencyRecorder{binSize: binSize}
}

// Observe records one request completing at virtual time at with the given
// latency. Observations must arrive in non-decreasing time order.
func (r *LatencyRecorder) Observe(at time.Duration, latency time.Duration) {
	r.hist.Observe(latency.Seconds())
	bin := at.Truncate(r.binSize)
	if bin != r.binStart && r.binCount > 0 {
		r.flushBin()
		r.binStart = bin
	} else if r.binCount == 0 {
		r.binStart = bin
	}
	r.binSum += latency.Seconds()
	r.binCount++
}

func (r *LatencyRecorder) flushBin() {
	if r.binCount == 0 {
		return
	}
	r.series.Append(r.binStart, r.binSum/float64(r.binCount))
	r.binSum, r.binCount = 0, 0
}

// Histogram returns the distribution of all latencies (seconds). The
// returned histogram is a live view; do not mutate concurrently with
// Observe.
func (r *LatencyRecorder) Histogram() *metrics.Histogram {
	return &r.hist
}

// Series returns the binned average-latency time series, flushing the
// in-progress bin.
func (r *LatencyRecorder) Series() *metrics.TimeSeries {
	r.flushBin()
	return &r.series
}

// Count reports the number of recorded requests.
func (r *LatencyRecorder) Count() int { return r.hist.Count() }
