package dag

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func diamond(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph("diamond")
	for _, name := range []string{"a", "b", "c", "d"} {
		g.MustAddComponent(Component{Name: name, CPU: 1, MemoryMB: 100})
	}
	g.MustAddEdge("a", "b", 10)
	g.MustAddEdge("a", "c", 5)
	g.MustAddEdge("b", "d", 3)
	g.MustAddEdge("c", "d", 2)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := diamond(t)
	if g.NumComponents() != 4 || g.NumEdges() != 4 {
		t.Fatalf("components=%d edges=%d", g.NumComponents(), g.NumEdges())
	}
	if got := g.Weight("a", "b"); got != 10 {
		t.Errorf("Weight(a,b) = %v", got)
	}
	if got := g.Weight("b", "a"); got != 0 {
		t.Errorf("Weight(b,a) = %v, want 0 (directed)", got)
	}
	if got := g.TotalCPU(); got != 4 {
		t.Errorf("TotalCPU = %v", got)
	}
	if got := g.TotalMemoryMB(); got != 400 {
		t.Errorf("TotalMemoryMB = %v", got)
	}
	if got := g.TotalBandwidthMbps(); got != 20 {
		t.Errorf("TotalBandwidthMbps = %v", got)
	}
	if !g.HasComponent("a") || g.HasComponent("zz") {
		t.Error("HasComponent wrong")
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph("e")
	g.MustAddComponent(Component{Name: "a"})
	if err := g.AddComponent(Component{Name: "a"}); !errors.Is(err, ErrDuplicateComponent) {
		t.Errorf("dup component: %v", err)
	}
	if err := g.AddComponent(Component{}); err == nil {
		t.Error("empty name: want error")
	}
	if err := g.AddEdge("a", "a", 1); !errors.Is(err, ErrSelfEdge) {
		t.Errorf("self edge: %v", err)
	}
	if err := g.AddEdge("a", "zz", 1); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("unknown target: %v", err)
	}
	if err := g.AddEdge("zz", "a", 1); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("unknown source: %v", err)
	}
	g.MustAddComponent(Component{Name: "b"})
	g.MustAddEdge("a", "b", 1)
	if err := g.AddEdge("a", "b", 2); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("dup edge: %v", err)
	}
	if err := g.AddEdge("b", "a", -1); err == nil {
		t.Error("negative bandwidth: want error")
	}
	if _, err := g.Component("zz"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("unknown component: %v", err)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("topo = %v, want %v (insertion-order ties)", order, want)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewGraph("cycle")
	g.MustAddComponent(Component{Name: "a"})
	g.MustAddComponent(Component{Name: "b"})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "a", 1)
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("want ErrCycle, got %v", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate: want ErrCycle, got %v", err)
	}
}

func TestTopoSortEmpty(t *testing.T) {
	if _, err := NewGraph("e").TopoSort(); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("want ErrEmptyGraph, got %v", err)
	}
}

func TestValidateNegativeResources(t *testing.T) {
	g := NewGraph("bad")
	g.MustAddComponent(Component{Name: "a", CPU: -1})
	if err := g.Validate(); err == nil {
		t.Error("negative CPU: want error")
	}
}

func TestNeighborsUndirected(t *testing.T) {
	g := diamond(t)
	nb := g.Neighbors("b")
	if nb["a"] != 10 || nb["d"] != 3 {
		t.Errorf("Neighbors(b) = %v", nb)
	}
	if len(nb) != 2 {
		t.Errorf("Neighbors(b) has %d entries", len(nb))
	}
}

func TestRootsLeaves(t *testing.T) {
	g := diamond(t)
	if got := g.Roots(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Roots = %v", got)
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []string{"d"}) {
		t.Errorf("Leaves = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddComponent(Component{Name: "extra"})
	if g.HasComponent("extra") {
		t.Error("clone mutation leaked into original")
	}
	if c.NumEdges() != g.NumEdges() {
		t.Errorf("clone edges = %d", c.NumEdges())
	}
}

func TestComponentLabelCopy(t *testing.T) {
	labels := map[string]string{"k": "v"}
	g := NewGraph("l")
	g.MustAddComponent(Component{Name: "a", Labels: labels})
	labels["k"] = "changed"
	c, err := g.Component("a")
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels["k"] != "v" {
		t.Error("labels not copied at boundary")
	}
}

func TestPin(t *testing.T) {
	g := NewGraph("p")
	g.MustAddComponent(Component{Name: "pinned", Labels: Pin("node7")})
	g.MustAddComponent(Component{Name: "free"})
	p, err := g.Component("pinned")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Pinned() || p.PinnedTo() != "node7" {
		t.Errorf("pinned = %v, to %q", p.Pinned(), p.PinnedTo())
	}
	f, err := g.Component("free")
	if err != nil {
		t.Fatal(err)
	}
	if f.Pinned() {
		t.Error("free component reports pinned")
	}
}

// TestTopoSortProperty property-checks that topological order respects every
// edge on random DAGs.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph("prop")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			g.MustAddComponent(Component{Name: names[i]})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(names[i], names[j], 1)
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, c := range order {
			pos[c] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
