package dag

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph("demo")
	g.MustAddComponent(Component{Name: "front", CPU: 1, MemoryMB: 256, Labels: Pin("node1")})
	g.MustAddComponent(Component{Name: "back", CPU: 2, MemoryMB: 512})
	g.MustAddEdge("front", "back", 12.5)

	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "demo"`,
		`"front" -> "back"`,
		"12.50 Mbps",
		"pinned: node1",
		"2 cpu / 512 MB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink full") }

func TestWriteDOTError(t *testing.T) {
	g := NewGraph("x")
	g.MustAddComponent(Component{Name: "a"})
	if err := g.WriteDOT(failWriter{}); err == nil {
		t.Error("failing writer: want error")
	}
}
