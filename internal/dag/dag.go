// Package dag models an application as a directed acyclic graph of
// components. Vertices carry CPU and memory requirements; edges carry the
// maximum bandwidth requirement between the two components (gathered through
// offline profiling, per §5 of the BASS paper). The package provides
// construction, validation, topological sorting, and traversal utilities the
// scheduling heuristics build on.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors for graph validation and lookup.
var (
	ErrDuplicateComponent = errors.New("dag: duplicate component")
	ErrUnknownComponent   = errors.New("dag: unknown component")
	ErrSelfEdge           = errors.New("dag: self edge")
	ErrDuplicateEdge      = errors.New("dag: duplicate edge")
	ErrCycle              = errors.New("dag: graph contains a cycle")
	ErrEmptyGraph         = errors.New("dag: empty graph")
)

// Component is one deployable unit of an application.
type Component struct {
	// Name uniquely identifies the component within its application.
	Name string
	// CPU is the number of cores requested (fractional allowed).
	CPU float64
	// MemoryMB is the memory request in megabytes.
	MemoryMB float64
	// StateMB is the component state that must move with it during a
	// migration (0 = stateless or discardable, the paper's base assumption;
	// non-zero models CRIU/Medes-style stateful migration from §8, whose
	// transfer time and network cost the orchestrator charges).
	StateMB float64
	// Labels carries free-form metadata from the deployment spec.
	Labels map[string]string
}

// Edge is a directed dependency: data flows From → To at up to BandwidthMbps.
type Edge struct {
	From string
	To   string
	// BandwidthMbps is the profiled maximum bandwidth requirement between
	// the two components, in megabits per second.
	BandwidthMbps float64
}

// Graph is an application component DAG. Construct with NewGraph and
// AddComponent/AddEdge; mutation is not safe for concurrent use.
type Graph struct {
	// AppName identifies the application.
	AppName string

	components map[string]*Component
	order      []string // insertion order, for deterministic iteration
	out        map[string][]Edge
	in         map[string][]Edge
}

// NewGraph returns an empty application graph.
func NewGraph(appName string) *Graph {
	return &Graph{
		AppName:    appName,
		components: make(map[string]*Component),
		out:        make(map[string][]Edge),
		in:         make(map[string][]Edge),
	}
}

// AddComponent adds a component to the graph.
func (g *Graph) AddComponent(c Component) error {
	if c.Name == "" {
		return fmt.Errorf("dag: component with empty name")
	}
	if _, ok := g.components[c.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateComponent, c.Name)
	}
	cc := c
	if c.Labels != nil {
		cc.Labels = make(map[string]string, len(c.Labels))
		for k, v := range c.Labels {
			cc.Labels[k] = v
		}
	}
	g.components[c.Name] = &cc
	g.order = append(g.order, c.Name)
	return nil
}

// MustAddComponent adds a component and panics on error. Intended for
// statically known graphs in tests and examples.
func (g *Graph) MustAddComponent(c Component) {
	if err := g.AddComponent(c); err != nil {
		panic(err)
	}
}

// AddEdge adds a directed edge with a bandwidth requirement.
func (g *Graph) AddEdge(from, to string, bandwidthMbps float64) error {
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfEdge, from)
	}
	if _, ok := g.components[from]; !ok {
		return fmt.Errorf("%w: edge source %q", ErrUnknownComponent, from)
	}
	if _, ok := g.components[to]; !ok {
		return fmt.Errorf("%w: edge target %q", ErrUnknownComponent, to)
	}
	if bandwidthMbps < 0 {
		return fmt.Errorf("dag: negative bandwidth %v on edge %s->%s", bandwidthMbps, from, to)
	}
	for _, e := range g.out[from] {
		if e.To == to {
			return fmt.Errorf("%w: %s->%s", ErrDuplicateEdge, from, to)
		}
	}
	e := Edge{From: from, To: to, BandwidthMbps: bandwidthMbps}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// MustAddEdge adds an edge and panics on error.
func (g *Graph) MustAddEdge(from, to string, bandwidthMbps float64) {
	if err := g.AddEdge(from, to, bandwidthMbps); err != nil {
		panic(err)
	}
}

// Component returns the named component.
func (g *Graph) Component(name string) (*Component, error) {
	c, ok := g.components[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownComponent, name)
	}
	return c, nil
}

// HasComponent reports whether the named component exists.
func (g *Graph) HasComponent(name string) bool {
	_, ok := g.components[name]
	return ok
}

// Components returns all component names in insertion order.
func (g *Graph) Components() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// NumComponents reports the number of components.
func (g *Graph) NumComponents() int { return len(g.components) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Out returns the outgoing edges of a component, in insertion order.
func (g *Graph) Out(name string) []Edge {
	es := g.out[name]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// In returns the incoming edges of a component, in insertion order.
func (g *Graph) In(name string) []Edge {
	es := g.in[name]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// Edges returns all edges, grouped by source in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for _, name := range g.order {
		out = append(out, g.out[name]...)
	}
	return out
}

// Weight returns the bandwidth requirement on edge from→to, or 0 if absent.
func (g *Graph) Weight(from, to string) float64 {
	for _, e := range g.out[from] {
		if e.To == to {
			return e.BandwidthMbps
		}
	}
	return 0
}

// SetWeight updates the bandwidth requirement of an existing edge — the
// hook online profiling uses to replace offline-profiled requirements with
// observed ones (§8 of the paper lists this as future work).
func (g *Graph) SetWeight(from, to string, bandwidthMbps float64) error {
	if bandwidthMbps < 0 {
		return fmt.Errorf("dag: negative bandwidth %v on edge %s->%s", bandwidthMbps, from, to)
	}
	found := false
	for i := range g.out[from] {
		if g.out[from][i].To == to {
			g.out[from][i].BandwidthMbps = bandwidthMbps
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("dag: no edge %s->%s", from, to)
	}
	for i := range g.in[to] {
		if g.in[to][i].From == from {
			g.in[to][i].BandwidthMbps = bandwidthMbps
			break
		}
	}
	return nil
}

// Neighbors returns the undirected neighbor set of a component with the
// bandwidth on the connecting edge (used by migration logic, which cares
// about traffic in either direction).
func (g *Graph) Neighbors(name string) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range g.out[name] {
		out[e.To] += e.BandwidthMbps
	}
	for _, e := range g.in[name] {
		out[e.From] += e.BandwidthMbps
	}
	return out
}

// TotalCPU sums the CPU requests of all components.
func (g *Graph) TotalCPU() float64 {
	var s float64
	for _, c := range g.components {
		s += c.CPU
	}
	return s
}

// TotalMemoryMB sums the memory requests of all components.
func (g *Graph) TotalMemoryMB() float64 {
	var s float64
	for _, c := range g.components {
		s += c.MemoryMB
	}
	return s
}

// TotalBandwidthMbps sums the bandwidth requirements of all edges.
func (g *Graph) TotalBandwidthMbps() float64 {
	var s float64
	for _, es := range g.out {
		for _, e := range es {
			s += e.BandwidthMbps
		}
	}
	return s
}

// TopoSort returns the components in topological order. Ties are broken by
// insertion order so results are deterministic. It returns ErrCycle if the
// graph is not a DAG and ErrEmptyGraph if it has no components.
func (g *Graph) TopoSort() ([]string, error) {
	if len(g.components) == 0 {
		return nil, ErrEmptyGraph
	}
	indeg := make(map[string]int, len(g.components))
	for _, name := range g.order {
		indeg[name] = len(g.in[name])
	}
	// Ready queue kept in insertion order for determinism.
	pos := make(map[string]int, len(g.order))
	for i, name := range g.order {
		pos[name] = i
	}
	var ready []string
	for _, name := range g.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	out := make([]string, 0, len(g.components))
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		cur := ready[0]
		ready = ready[1:]
		out = append(out, cur)
		for _, e := range g.out[cur] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(g.components) {
		return nil, ErrCycle
	}
	return out, nil
}

// Validate checks that the graph is a non-empty DAG with positive resource
// requests.
func (g *Graph) Validate() error {
	if len(g.components) == 0 {
		return ErrEmptyGraph
	}
	for _, name := range g.order {
		c := g.components[name]
		if c.CPU < 0 {
			return fmt.Errorf("dag: component %q has negative CPU %v", name, c.CPU)
		}
		if c.MemoryMB < 0 {
			return fmt.Errorf("dag: component %q has negative memory %v", name, c.MemoryMB)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.AppName)
	for _, name := range g.order {
		out.MustAddComponent(*g.components[name])
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(e.From, e.To, e.BandwidthMbps)
	}
	return out
}

// Roots returns components with no incoming edges, in insertion order.
func (g *Graph) Roots() []string {
	var out []string
	for _, name := range g.order {
		if len(g.in[name]) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// Leaves returns components with no outgoing edges, in insertion order.
func (g *Graph) Leaves() []string {
	var out []string
	for _, name := range g.order {
		if len(g.out[name]) == 0 {
			out = append(out, name)
		}
	}
	return out
}
