package dag

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	g := diamond(t)
	spec := g.ToSpec()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumComponents() != g.NumComponents() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost structure: %d/%d vs %d/%d",
			back.NumComponents(), back.NumEdges(), g.NumComponents(), g.NumEdges())
	}
	if back.Weight("a", "b") != 10 {
		t.Errorf("edge weight lost: %v", back.Weight("a", "b"))
	}
}

func TestSpecGraphValidates(t *testing.T) {
	s := Spec{
		App:        "bad",
		Components: []ComponentSpec{{Name: "a"}, {Name: "b"}},
		Edges:      []EdgeSpec{{From: "a", To: "b"}, {From: "b", To: "a"}},
	}
	if _, err := s.Graph(); err == nil {
		t.Error("cyclic spec: want error")
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	in := strings.NewReader(`{"app":"x","components":[],"edges":[],"bogus":1}`)
	if _, err := ReadSpec(in); err == nil {
		t.Error("unknown field: want error")
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.json")
	content := `{
  "app": "demo",
  "components": [
    {"name": "front", "cpu": 1, "memoryMB": 256, "labels": {"bass.dev/pin": "node1"}},
    {"name": "back", "cpu": 2, "memoryMB": 512}
  ],
  "edges": [{"from": "front", "to": "back", "bandwidthMbps": 12}]
}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.AppName != "demo" || g.NumComponents() != 2 {
		t.Fatalf("loaded %q with %d components", g.AppName, g.NumComponents())
	}
	front, err := g.Component("front")
	if err != nil {
		t.Fatal(err)
	}
	if front.PinnedTo() != "node1" {
		t.Errorf("pin lost: %q", front.PinnedTo())
	}
	if g.Weight("front", "back") != 12 {
		t.Errorf("weight = %v", g.Weight("front", "back"))
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/app.json"); err == nil {
		t.Error("missing file: want error")
	}
}
