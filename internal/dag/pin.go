package dag

// PinLabel is the component label that pins a component to a specific node,
// the way a Kubernetes nodeSelector pins a pod. Pinned components model
// endpoints that cannot move: video-conference participants at their mesh
// node, the workload generator host, a camera attached to a pole.
const PinLabel = "bass.dev/pin"

// Pin returns a label map pinning a component to the named node.
func Pin(node string) map[string]string {
	return map[string]string{PinLabel: node}
}

// PinnedTo reports the node the component is pinned to, or "" if unpinned.
func (c *Component) PinnedTo() string {
	if c.Labels == nil {
		return ""
	}
	return c.Labels[PinLabel]
}

// Pinned reports whether the component is pinned to a node.
func (c *Component) Pinned() bool { return c.PinnedTo() != "" }
