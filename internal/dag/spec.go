package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Spec is the on-disk deployment description of an application, mirroring
// the way BASS attaches bandwidth requirements to the metadata section of a
// Kubernetes deployment file (§5). It serialises to/from JSON.
type Spec struct {
	App        string          `json:"app"`
	Components []ComponentSpec `json:"components"`
	Edges      []EdgeSpec      `json:"edges"`
}

// ComponentSpec describes one component's resource requests.
type ComponentSpec struct {
	Name     string            `json:"name"`
	CPU      float64           `json:"cpu"`
	MemoryMB float64           `json:"memoryMB"`
	StateMB  float64           `json:"stateMB,omitempty"`
	Labels   map[string]string `json:"labels,omitempty"`
}

// EdgeSpec describes one inter-component bandwidth requirement.
type EdgeSpec struct {
	From          string  `json:"from"`
	To            string  `json:"to"`
	BandwidthMbps float64 `json:"bandwidthMbps"`
}

// Graph materialises the spec into a validated Graph.
func (s Spec) Graph() (*Graph, error) {
	g := NewGraph(s.App)
	for _, c := range s.Components {
		if err := g.AddComponent(Component{
			Name:     c.Name,
			CPU:      c.CPU,
			MemoryMB: c.MemoryMB,
			StateMB:  c.StateMB,
			Labels:   c.Labels,
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e.From, e.To, e.BandwidthMbps); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ToSpec converts a graph back into its serialisable form.
func (g *Graph) ToSpec() Spec {
	s := Spec{App: g.AppName}
	for _, name := range g.order {
		c := g.components[name]
		s.Components = append(s.Components, ComponentSpec{
			Name:     c.Name,
			CPU:      c.CPU,
			MemoryMB: c.MemoryMB,
			StateMB:  c.StateMB,
			Labels:   c.Labels,
		})
	}
	for _, e := range g.Edges() {
		s.Edges = append(s.Edges, EdgeSpec{From: e.From, To: e.To, BandwidthMbps: e.BandwidthMbps})
	}
	return s
}

// ReadSpec parses a Spec from JSON.
func ReadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("dag: decode spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads a Spec from a JSON file and materialises the graph.
func LoadSpec(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dag: open %q: %w", path, err)
	}
	defer f.Close()
	s, err := ReadSpec(f)
	if err != nil {
		return nil, err
	}
	return s.Graph()
}

// WriteSpec writes the spec as indented JSON.
func WriteSpec(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("dag: encode spec: %w", err)
	}
	return nil
}
