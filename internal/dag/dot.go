package dag

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format: components as boxes
// labelled with their resource requests, edges labelled with bandwidth
// requirements, pinned components annotated with their node. Useful for
// inspecting application topologies (`dot -Tpng app.dot`).
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.AppName)
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	names := g.Components()
	sort.Strings(names)
	for _, name := range names {
		c, err := g.Component(name)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%s\\n%.2g cpu / %.0f MB", c.Name, c.CPU, c.MemoryMB)
		if pin := c.PinnedTo(); pin != "" {
			label += "\\npinned: " + pin
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", name, label)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.2f Mbps\"];\n", e.From, e.To, e.BandwidthMbps)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("dag: write dot: %w", err)
	}
	return nil
}
